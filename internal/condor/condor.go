// Package condor reimplements the slice of Condor that ERMS relies on: a
// job queue matched to machine ClassAds by a periodic negotiator, a
// priority split between run-immediately jobs (replica increases, erasure
// decodes) and run-when-idle jobs (replica decreases, erasure encodes), a
// user log recording every job event for replay, and automatic rollback of
// failed jobs.
package condor

import (
	"fmt"
	"sort"
	"time"

	"erms/internal/classad"
	"erms/internal/metrics"
	"erms/internal/sim"
	"erms/internal/trace"
)

// Class splits jobs by urgency, mirroring the paper: "It schedules the
// increasing replication tasks and erasure decoding tasks immediately,
// while run the decreasing replication tasks and erasure encoding tasks
// when the HDFS cluster is idle."
type Class int

const (
	// ClassImmediate jobs run at the next negotiation regardless of load.
	ClassImmediate Class = iota
	// ClassIdle jobs run only while the idle probe reports the cluster idle.
	ClassIdle
)

func (c Class) String() string {
	if c == ClassImmediate {
		return "immediate"
	}
	return "idle"
}

// State is a job's lifecycle state.
type State int

// Job states. Failed jobs whose Rollback ran become RolledBack.
const (
	StatePending State = iota
	StateRunning
	StateCompleted
	StateFailed
	StateRolledBack
	StateAborted
)

func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateRunning:
		return "running"
	case StateCompleted:
		return "completed"
	case StateFailed:
		return "failed"
	case StateRolledBack:
		return "rolled-back"
	case StateAborted:
		return "aborted"
	}
	return "unknown"
}

// Job is one schedulable management task.
type Job struct {
	ID    int
	Name  string
	Class Class
	// Ad carries Requirements/Rank evaluated against machine ads. A nil Ad
	// matches any machine.
	Ad *classad.ClassAd
	// Run executes the task on the chosen machine. It must eventually call
	// done exactly once (possibly after simulated delays). A nil error
	// completes the job; otherwise the job fails and Rollback (if any) runs.
	Run func(m *Machine, done func(error))
	// Rollback undoes a failed job's partial effects.
	Rollback func()
	// Retry governs re-execution after failure or hang; the zero value
	// means one attempt, no timeout (the original semantics).
	Retry RetryPolicy
	// Notify, if set, fires once when the job reaches a terminal state
	// (Completed, Failed, RolledBack, or Aborted) — after rollback and
	// logging. Unlike wrapping Run's done, it also observes jobs whose
	// last attempt was reclaimed by the timeout watchdog.
	Notify func(j *Job)

	State      State
	SubmitTime time.Duration
	StartTime  time.Duration
	EndTime    time.Duration
	Err        error
	MachineID  string
	// Attempt counts executions started so far (1 on the first run).
	Attempt int
	// Span is the job's "condor.job" trace span, opened at Submit and
	// closed at the terminal state (0 when tracing is disabled).
	Span trace.SpanID
}

// Machine is an execution target advertised to the scheduler.
type Machine struct {
	Name  string
	Ad    *classad.ClassAd
	Slots int
	busy  int
	gone  bool
}

// Free returns the number of available slots.
func (m *Machine) Free() int { return m.Slots - m.busy }

// EventKind labels user log entries.
type EventKind string

// User log event kinds (mirroring Condor's job event log).
const (
	EventSubmit    EventKind = "submit"
	EventExecute   EventKind = "execute"
	EventTerminate EventKind = "terminate"
	EventFail      EventKind = "fail"
	EventRollback  EventKind = "rollback"
	EventAbort     EventKind = "abort"
	// EventRetry records a failed attempt that will be re-executed after a
	// backoff; EventFail is only logged when attempts are exhausted.
	EventRetry EventKind = "retry"
	// EventTimeout records an attempt reclaimed by the hung-job watchdog.
	EventTimeout EventKind = "timeout"
)

// LogEvent is one user log record.
type LogEvent struct {
	Time    time.Duration
	JobID   int
	JobName string
	Kind    EventKind
	Detail  string
}

func (e LogEvent) String() string {
	return fmt.Sprintf("%012.3fs job=%d (%s) %s %s",
		e.Time.Seconds(), e.JobID, e.JobName, e.Kind, e.Detail)
}

// Scheduler is the negotiator plus queue.
type Scheduler struct {
	clock     sim.Clock
	machines  map[string]*Machine
	order     []string // machine registration order, for determinism
	queue     []*Job
	byID      map[int]*Job
	running   int
	nextID    int
	idleProbe func() bool
	log       []LogEvent
	stats     Stats // incrementally maintained by logEvent
	ticker    *sim.Ticker
	kick      bool // a same-instant negotiation is already scheduled
	tracer    *trace.Tracer
}

// SetTracer installs a span tracer: each job records a "condor.job" span
// from submit to terminal state, with one "condor.attempt" child per
// execution. Nil disables tracing.
func (s *Scheduler) SetTracer(tr *trace.Tracer) { s.tracer = tr }

// RegisterMetrics registers job-outcome counters and queue gauges into a
// metrics registry.
func (s *Scheduler) RegisterMetrics(r *metrics.Registry) {
	r.GaugeFunc("condor_jobs_submitted_total", func() float64 { return float64(s.stats.Submitted) })
	r.GaugeFunc("condor_jobs_completed_total", func() float64 { return float64(s.stats.Completed) })
	r.GaugeFunc("condor_jobs_failed_total", func() float64 { return float64(s.stats.Failed) })
	r.GaugeFunc("condor_jobs_rolled_back_total", func() float64 { return float64(s.stats.RolledBack) })
	r.GaugeFunc("condor_jobs_aborted_total", func() float64 { return float64(s.stats.Aborted) })
	r.GaugeFunc("condor_attempts_retried_total", func() float64 { return float64(s.stats.Retried) })
	r.GaugeFunc("condor_attempts_timed_out_total", func() float64 { return float64(s.stats.TimedOut) })
	r.GaugeFunc("condor_jobs_running", func() float64 { return float64(s.running) })
	r.GaugeFunc("condor_jobs_pending", func() float64 { return float64(s.Pending()) })
}

// Config tunes the scheduler.
type Config struct {
	// NegotiationPeriod is how often the negotiator matches pending jobs;
	// default 5s of virtual time.
	NegotiationPeriod time.Duration
	// IdleProbe reports whether the cluster is idle enough for ClassIdle
	// jobs; nil means always idle.
	IdleProbe func() bool
}

// New creates a scheduler scheduling through the given clock.
func New(clock sim.Clock, cfg Config) *Scheduler {
	if cfg.NegotiationPeriod <= 0 {
		cfg.NegotiationPeriod = 5 * time.Second
	}
	if cfg.IdleProbe == nil {
		cfg.IdleProbe = func() bool { return true }
	}
	s := &Scheduler{
		clock:     clock,
		machines:  make(map[string]*Machine),
		byID:      make(map[int]*Job),
		idleProbe: cfg.IdleProbe,
	}
	s.ticker = sim.NewTicker(clock, cfg.NegotiationPeriod, func(time.Duration) {
		s.negotiate()
	})
	return s
}

// Stop halts the negotiation cycle (end of simulation).
func (s *Scheduler) Stop() { s.ticker.Stop() }

// Advertise registers (commissions) a machine. Re-advertising an existing
// name updates its ad. This is the ClassAd mechanism the paper uses "to
// detect when datanodes are commissioned or decommissioned".
func (s *Scheduler) Advertise(name string, ad *classad.ClassAd, slots int) *Machine {
	if slots <= 0 {
		slots = 1
	}
	if m, ok := s.machines[name]; ok && !m.gone {
		m.Ad = ad
		m.Slots = slots
		return m
	}
	m := &Machine{Name: name, Ad: ad, Slots: slots}
	s.machines[name] = m
	s.order = append(s.order, name)
	return m
}

// Decommission removes a machine from matchmaking. Jobs already running
// there finish normally.
func (s *Scheduler) Decommission(name string) {
	if m, ok := s.machines[name]; ok {
		m.gone = true
	}
}

// Machines returns advertised, non-decommissioned machines in registration
// order.
func (s *Scheduler) Machines() []*Machine {
	var out []*Machine
	for _, name := range s.order {
		if m := s.machines[name]; !m.gone {
			out = append(out, m)
		}
	}
	return out
}

// Submit queues a job and schedules an immediate negotiation for
// ClassImmediate work.
func (s *Scheduler) Submit(j *Job) *Job {
	if j.Run == nil {
		panic("condor: job without Run")
	}
	s.nextID++
	j.ID = s.nextID
	j.State = StatePending
	j.SubmitTime = s.clock.Now()
	s.byID[j.ID] = j
	s.queue = append(s.queue, j)
	if tr := s.tracer; tr.Enabled() {
		j.Span = tr.Begin("condor.job", tr.Current())
		tr.SetAttr(j.Span, "name", j.Name)
		tr.SetAttr(j.Span, "class", j.Class.String())
		tr.SetAttrInt(j.Span, "job", int64(j.ID))
	}
	s.logEvent(j, EventSubmit, j.Class.String())
	if j.Class == ClassImmediate {
		s.kickSoon()
	}
	return j
}

// Abort removes a pending job from the queue. Running jobs cannot be
// aborted (the simulation has no preemption); Abort returns false for them.
func (s *Scheduler) Abort(j *Job) bool {
	if j.State != StatePending {
		return false
	}
	j.State = StateAborted
	j.EndTime = s.clock.Now()
	s.logEvent(j, EventAbort, "")
	s.notify(j)
	return true
}

// notify closes the job's trace span and invokes its terminal-state
// callback, if any. The callback runs with the job span ambient so any
// follow-up work it launches parents under the job.
func (s *Scheduler) notify(j *Job) {
	s.tracer.SetAttr(j.Span, "state", j.State.String())
	s.tracer.End(j.Span)
	if j.Notify != nil {
		prev := s.tracer.Push(j.Span)
		j.Notify(j)
		s.tracer.Pop(prev)
	}
}

// kickSoon schedules a negotiation at the current instant (coalescing
// multiple submissions in the same event).
func (s *Scheduler) kickSoon() {
	if s.kick {
		return
	}
	s.kick = true
	s.clock.Schedule(0, func() {
		s.kick = false
		s.negotiate()
	})
}

// negotiate matches pending jobs to machines: immediate class first, FIFO
// within a class; machines chosen by job Rank, ties broken by most free
// slots then registration order.
func (s *Scheduler) negotiate() {
	idle := s.idleProbe()
	snapshot := len(s.queue)
	var rest []*Job
	for _, j := range s.pendingInOrder() {
		if j.State != StatePending {
			continue
		}
		if j.Class == ClassIdle && !idle {
			rest = append(rest, j)
			continue
		}
		m := s.bestMachine(j)
		if m == nil {
			rest = append(rest, j)
			continue
		}
		s.start(j, m)
	}
	// A start may run its job synchronously to a terminal state, whose
	// Notify may Submit new work re-entrantly — those jobs landed in
	// s.queue past the snapshot and must survive the rebuild.
	rest = append(rest, s.queue[snapshot:]...)
	// Rebuild queue with still-pending jobs, preserving order.
	s.queue = s.queue[:0]
	s.queue = append(s.queue, rest...)
}

func (s *Scheduler) pendingInOrder() []*Job {
	out := make([]*Job, len(s.queue))
	copy(out, s.queue)
	sort.SliceStable(out, func(i, k int) bool {
		if out[i].Class != out[k].Class {
			return out[i].Class == ClassImmediate
		}
		return out[i].ID < out[k].ID
	})
	return out
}

func (s *Scheduler) bestMachine(j *Job) *Machine {
	var best *Machine
	var bestRank float64
	for _, name := range s.order {
		m := s.machines[name]
		if m.gone || m.Free() <= 0 {
			continue
		}
		if j.Ad != nil && m.Ad != nil && !classad.Match(j.Ad, m.Ad) {
			continue
		}
		rank := 0.0
		if j.Ad != nil {
			rank = classad.RankOf(j.Ad, m.Ad)
		}
		if best == nil || rank > bestRank ||
			(rank == bestRank && m.Free() > best.Free()) {
			best = m
			bestRank = rank
		}
	}
	return best
}

// start launches one attempt of j on m. The done closure and the hung-job
// watchdog are per-attempt: after a timeout reclaims the machine, a
// straggling completion from the abandoned attempt is ignored rather than
// corrupting slot accounting (but a double-done within a live attempt
// still panics — that is a modeling bug).
func (s *Scheduler) start(j *Job, m *Machine) {
	j.State = StateRunning
	j.StartTime = s.clock.Now()
	j.MachineID = m.Name
	j.Attempt++
	m.busy++
	s.running++
	detail := "on " + m.Name
	if j.Attempt > 1 {
		detail = fmt.Sprintf("on %s (attempt %d)", m.Name, j.Attempt)
	}
	s.logEvent(j, EventExecute, detail)
	attemptSpan := s.tracer.Begin("condor.attempt", j.Span)
	if s.tracer.Enabled() {
		s.tracer.SetAttr(attemptSpan, "machine", m.Name)
		s.tracer.SetAttrInt(attemptSpan, "attempt", int64(j.Attempt))
	}
	finished := false
	timedOut := false
	var watchdog *sim.Event
	reclaim := func() {
		m.busy--
		s.running--
		if watchdog != nil {
			s.clock.Cancel(watchdog)
			watchdog = nil
		}
	}
	done := func(err error) {
		if timedOut {
			return // attempt already reclaimed by the watchdog
		}
		if finished {
			panic(fmt.Sprintf("condor: job %d completed twice", j.ID))
		}
		finished = true
		reclaim()
		if err == nil {
			j.EndTime = s.clock.Now()
			j.State = StateCompleted
			s.logEvent(j, EventTerminate, "ok")
			s.tracer.End(attemptSpan)
			s.notify(j)
			s.kickSoon()
			return
		}
		if s.tracer.Enabled() {
			s.tracer.SetAttr(attemptSpan, "error", err.Error())
			s.tracer.End(attemptSpan)
		}
		s.afterFailure(j, err)
	}
	if t := j.Retry.Timeout; t > 0 {
		watchdog = s.clock.Schedule(t, func() {
			if finished {
				return
			}
			timedOut = true
			watchdog = nil
			reclaim()
			s.logEvent(j, EventTimeout, fmt.Sprintf("after %s on %s", t, m.Name))
			if s.tracer.Enabled() {
				s.tracer.SetAttr(attemptSpan, "error", "timeout")
				s.tracer.End(attemptSpan)
			}
			s.afterFailure(j, fmt.Errorf("condor: job %d hung for %s on %s", j.ID, t, m.Name))
		})
	}
	prev := s.tracer.Push(attemptSpan)
	j.Run(m, done)
	s.tracer.Pop(prev)
}

// afterFailure routes a failed or timed-out attempt: schedule a retry with
// exponential backoff while attempts remain, otherwise declare the job
// failed and run its rollback.
func (s *Scheduler) afterFailure(j *Job, err error) {
	j.Err = err
	if j.Attempt < j.Retry.attempts() {
		backoff := j.Retry.backoffFor(j.Attempt)
		j.State = StatePending
		s.logEvent(j, EventRetry,
			fmt.Sprintf("attempt %d failed (%v); retry in %s", j.Attempt, err, backoff))
		s.clock.Schedule(backoff, func() {
			if j.State != StatePending {
				return // aborted while backing off
			}
			s.queue = append(s.queue, j)
			if j.Class == ClassImmediate {
				s.kickSoon()
			}
		})
		return
	}
	j.EndTime = s.clock.Now()
	j.State = StateFailed
	s.logEvent(j, EventFail, err.Error())
	if j.Rollback != nil {
		j.Rollback()
		j.State = StateRolledBack
		s.logEvent(j, EventRollback, "")
	}
	s.notify(j)
	s.kickSoon()
}

// Running returns the number of jobs currently executing.
func (s *Scheduler) Running() int { return s.running }

// Pending returns the number of jobs awaiting execution — queued for the
// negotiator or sitting out a retry backoff.
func (s *Scheduler) Pending() int {
	n := 0
	for _, j := range s.byID {
		if j.State == StatePending {
			n++
		}
	}
	return n
}

// Job returns the job with the given ID, or nil.
func (s *Scheduler) Job(id int) *Job { return s.byID[id] }

// Jobs returns every submitted job in ID order.
func (s *Scheduler) Jobs() []*Job {
	out := make([]*Job, 0, len(s.byID))
	for _, j := range s.byID {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

func (s *Scheduler) logEvent(j *Job, kind EventKind, detail string) {
	s.log = append(s.log, LogEvent{
		Time: s.clock.Now(), JobID: j.ID, JobName: j.Name, Kind: kind, Detail: detail,
	})
	switch kind {
	case EventSubmit:
		s.stats.Submitted++
	case EventTerminate:
		s.stats.Completed++
	case EventFail:
		s.stats.Failed++
	case EventRollback:
		s.stats.RolledBack++
	case EventAbort:
		s.stats.Aborted++
	case EventRetry:
		s.stats.Retried++
	case EventTimeout:
		s.stats.TimedOut++
	}
}

// Log returns the user log (all job events, in order).
func (s *Scheduler) Log() []LogEvent { return s.log }

// Replay invokes fn for every logged event in order — the paper's "we can
// replay all operations and analyze them".
func (s *Scheduler) Replay(fn func(LogEvent)) {
	for _, e := range s.log {
		fn(e)
	}
}

// Stats summarizes job outcomes from the user log. Retried and TimedOut
// count attempts, not jobs; Failed counts only final failures (attempts
// exhausted).
type Stats struct {
	Submitted, Completed, Failed, RolledBack, Aborted int
	Retried, TimedOut                                 int
}

// Stats returns outcome counts (maintained incrementally as events are
// logged).
func (s *Scheduler) Stats() Stats { return s.stats }
