package condor

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"erms/internal/sim"
)

// flakyJob fails the first n attempts, then succeeds. It records the sim
// time of every execution so backoff spacing is observable.
func flakyJob(e *sim.Engine, failFirst int, times *[]time.Duration) *Job {
	attempts := 0
	return &Job{
		Name: "flaky",
		Run: func(m *Machine, done func(error)) {
			attempts++
			*times = append(*times, e.Now())
			if attempts <= failFirst {
				done(errors.New("transient"))
				return
			}
			done(nil)
		},
	}
}

// TestRetryExponentialBackoff: a job failing twice before succeeding is
// re-queued with doubling delays, is counted as retried, and ends
// Completed with the machine slot free.
func TestRetryExponentialBackoff(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, Config{NegotiationPeriod: time.Hour})
	s.Advertise("m1", machineAd(0, false), 1)
	var times []time.Duration
	j := flakyJob(e, 2, &times)
	j.Retry = RetryPolicy{MaxAttempts: 5, Backoff: 15 * time.Second}
	s.Submit(j)
	e.RunUntil(5 * time.Minute)

	if j.State != StateCompleted {
		t.Fatalf("state = %s", j.State)
	}
	if j.Attempt != 3 {
		t.Fatalf("attempts = %d, want 3", j.Attempt)
	}
	if len(times) != 3 {
		t.Fatalf("executions = %v", times)
	}
	// Backoff 15s after the first failure, 30s after the second.
	if gap := times[1] - times[0]; gap < 15*time.Second || gap > 16*time.Second {
		t.Fatalf("first retry gap = %s, want ~15s", gap)
	}
	if gap := times[2] - times[1]; gap < 30*time.Second || gap > 31*time.Second {
		t.Fatalf("second retry gap = %s, want ~30s", gap)
	}
	st := s.Stats()
	if st.Retried != 2 {
		t.Fatalf("Stats.Retried = %d, want 2", st.Retried)
	}
	if st.Completed != 1 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRetryExhaustionRollsBack: when every attempt fails, the job fails
// once (one EventFail), Rollback runs, and the machine is reusable.
func TestRetryExhaustionRollsBack(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, Config{NegotiationPeriod: time.Hour})
	s.Advertise("m1", machineAd(0, false), 1)
	rolledBack := false
	notified := 0
	j := &Job{
		Name:     "doomed",
		Run:      func(m *Machine, done func(error)) { done(errors.New("permanent")) },
		Rollback: func() { rolledBack = true },
		Retry:    RetryPolicy{MaxAttempts: 3, Backoff: 10 * time.Second},
		Notify:   func(*Job) { notified++ },
	}
	s.Submit(j)
	e.RunUntil(5 * time.Minute)

	if j.State != StateRolledBack {
		t.Fatalf("state = %s", j.State)
	}
	if !rolledBack {
		t.Fatal("rollback did not run")
	}
	if notified != 1 {
		t.Fatalf("Notify fired %d times, want 1 (terminal only)", notified)
	}
	fails, retries := 0, 0
	for _, ev := range s.Log() {
		switch ev.Kind {
		case EventFail:
			fails++
		case EventRetry:
			retries++
		}
	}
	if fails != 1 || retries != 2 {
		t.Fatalf("log has %d fails / %d retries, want 1/2", fails, retries)
	}
	// The slot must be free for the next job.
	var got []string
	s.Submit(instantJob("next", &got))
	e.RunFor(time.Minute)
	if len(got) != 1 {
		t.Fatal("machine slot leaked after exhausted retries")
	}
}

// TestTimeoutReclaimsMachine: a hung job (never calls done) is reclaimed
// by the watchdog, retried, and the machine serves other work meanwhile.
func TestTimeoutReclaimsMachine(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, Config{NegotiationPeriod: time.Hour})
	s.Advertise("m1", machineAd(0, false), 1)
	attempts := 0
	var lateDone func(error)
	j := &Job{
		Name: "hung",
		Run: func(m *Machine, done func(error)) {
			attempts++
			if attempts == 1 {
				lateDone = done // hang: never call done in this attempt
				return
			}
			done(nil)
		},
		Retry: RetryPolicy{MaxAttempts: 2, Backoff: 5 * time.Second, Timeout: time.Minute},
	}
	s.Submit(j)
	e.RunUntil(10 * time.Minute)

	if j.State != StateCompleted {
		t.Fatalf("state = %s", j.State)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d", attempts)
	}
	st := s.Stats()
	if st.TimedOut != 1 || st.Retried != 1 {
		t.Fatalf("TimedOut=%d Retried=%d, want 1/1", st.TimedOut, st.Retried)
	}
	// A done() arriving after the watchdog reclaimed the attempt must be
	// ignored, not panic or double-complete.
	if lateDone == nil {
		t.Fatal("first attempt never ran")
	}
	lateDone(nil)
	if got := s.Stats().Completed; got != 1 {
		t.Fatalf("late done double-completed: %d", got)
	}
}

// TestPendingCountsBackingOffJobs: a job waiting out its backoff is
// StatePending but not in the queue slice; Pending() must still count it
// (the manager's books-balance invariant depends on this).
func TestPendingCountsBackingOffJobs(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, Config{NegotiationPeriod: time.Hour})
	s.Advertise("m1", machineAd(0, false), 1)
	var times []time.Duration
	j := flakyJob(e, 1, &times)
	j.Retry = RetryPolicy{MaxAttempts: 2, Backoff: time.Minute}
	s.Submit(j)
	e.RunUntil(30 * time.Second) // mid-backoff
	if j.State != StatePending {
		t.Fatalf("state mid-backoff = %s", j.State)
	}
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending() = %d, want 1 during backoff", got)
	}
	e.RunUntil(5 * time.Minute)
	if j.State != StateCompleted {
		t.Fatalf("state = %s", j.State)
	}
}

// TestAbortDuringBackoffSticks: aborting a job while it waits out a
// backoff must not let the requeue timer resurrect it.
func TestAbortDuringBackoffSticks(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, Config{NegotiationPeriod: time.Hour})
	s.Advertise("m1", machineAd(0, false), 1)
	var times []time.Duration
	j := flakyJob(e, 99, &times)
	j.Retry = RetryPolicy{MaxAttempts: 10, Backoff: time.Minute}
	s.Submit(j)
	e.RunUntil(30 * time.Second) // first attempt failed, backing off
	s.Abort(j)
	e.RunUntil(20 * time.Minute)
	if j.State != StateAborted {
		t.Fatalf("state = %s", j.State)
	}
	if len(times) != 1 {
		t.Fatalf("aborted job ran %d times", len(times))
	}
}

// TestBackoffFor pins the backoff arithmetic.
func TestBackoffFor(t *testing.T) {
	p := RetryPolicy{Backoff: 15 * time.Second, MaxBackoff: time.Minute}
	want := []time.Duration{15 * time.Second, 30 * time.Second, time.Minute, time.Minute}
	for i, w := range want {
		if got := p.backoffFor(i + 1); got != w {
			t.Fatalf("backoffFor(%d) = %s, want %s", i+1, got, w)
		}
	}
	if got := (RetryPolicy{}).backoffFor(3); got != 0 {
		t.Fatalf("zero policy backoff = %s", got)
	}
}

// TestUserLogReplayRoundTrip: replaying the user log alone reconstructs
// every job's final state — including jobs that retried, timed out,
// rolled back, or were aborted.
func TestUserLogReplayRoundTrip(t *testing.T) {
	e := sim.NewEngine()
	// IdleProbe pinned false keeps idle-class jobs pending so one can be
	// aborted deterministically.
	s := New(e, Config{NegotiationPeriod: time.Hour, IdleProbe: func() bool { return false }})
	s.Advertise("m1", machineAd(0, false), 2)
	s.Advertise("m2", machineAd(1, false), 2)

	var times []time.Duration
	ok := flakyJob(e, 1, &times) // retries once, then completes
	ok.Retry = RetryPolicy{MaxAttempts: 3, Backoff: 5 * time.Second}
	s.Submit(ok)

	doomed := &Job{
		Name:     "doomed",
		Run:      func(m *Machine, done func(error)) { done(errors.New("no")) },
		Rollback: func() {},
		Retry:    RetryPolicy{MaxAttempts: 2, Backoff: 5 * time.Second},
	}
	s.Submit(doomed)

	hung := &Job{
		Name:  "hung",
		Run:   func(m *Machine, done func(error)) {},
		Retry: RetryPolicy{MaxAttempts: 1, Timeout: 30 * time.Second},
	}
	s.Submit(hung)

	aborted := &Job{Name: "zombie", Class: ClassIdle, Run: func(m *Machine, done func(error)) {}}
	s.Submit(aborted)
	e.Schedule(2*time.Second, func() { s.Abort(aborted) })

	e.RunUntil(10 * time.Minute)

	want := map[int]State{
		ok.ID:      StateCompleted,
		doomed.ID:  StateRolledBack,
		hung.ID:    StateFailed,
		aborted.ID: StateAborted,
	}
	for id, w := range want {
		if got := s.Job(id).State; got != w {
			t.Fatalf("job %d state = %s, want %s", id, got, w)
		}
	}
	got := ReconstructStates(s.Log())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %v\nwant %v", got, want)
	}
}
