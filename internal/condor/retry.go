package condor

import "time"

// RetryPolicy governs re-execution of failed or hung jobs, mirroring
// Condor's `on_exit_remove = false` + periodic-release idiom: a failed
// attempt goes back to the queue after an exponentially growing hold, and
// a hung attempt is reclaimed by a watchdog so the machine slot is not
// leaked. The zero value preserves the original semantics: one attempt,
// no timeout.
type RetryPolicy struct {
	// MaxAttempts bounds total executions (first run included); 0 and 1
	// both mean "no retry".
	MaxAttempts int
	// Backoff is the delay before the first retry; each subsequent retry
	// doubles it. 0 means retry at the next instant.
	Backoff time.Duration
	// MaxBackoff caps the doubled delay; 0 means uncapped.
	MaxBackoff time.Duration
	// Timeout reclaims an attempt that has neither completed nor failed
	// after this long; 0 disables the watchdog.
	Timeout time.Duration
}

// attempts returns the effective attempt bound (at least 1).
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoffFor returns the delay after the given failed attempt (1-based):
// Backoff doubled per prior failure, capped at MaxBackoff.
func (p RetryPolicy) backoffFor(attempt int) time.Duration {
	b := p.Backoff
	if b <= 0 {
		return 0
	}
	for i := 1; i < attempt; i++ {
		b *= 2
		if p.MaxBackoff > 0 && b >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if p.MaxBackoff > 0 && b > p.MaxBackoff {
		b = p.MaxBackoff
	}
	return b
}

// ReconstructStates replays a user log and returns each job's final state
// — the paper's "we can replay all operations and analyze them" applied
// to crash recovery: the log alone is enough to rebuild the queue's view
// of every job, retries and timeouts included.
func ReconstructStates(events []LogEvent) map[int]State {
	states := make(map[int]State)
	for _, e := range events {
		switch e.Kind {
		case EventSubmit, EventRetry:
			states[e.JobID] = StatePending
		case EventExecute:
			states[e.JobID] = StateRunning
		case EventTerminate:
			states[e.JobID] = StateCompleted
		case EventTimeout:
			// The attempt was reclaimed; the next event (retry or fail)
			// decides the job's fate.
		case EventFail:
			states[e.JobID] = StateFailed
		case EventRollback:
			states[e.JobID] = StateRolledBack
		case EventAbort:
			states[e.JobID] = StateAborted
		}
	}
	return states
}
