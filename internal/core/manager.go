package core

import (
	"fmt"
	"time"

	"erms/internal/classad"
	"erms/internal/condor"
	"erms/internal/hdfs"
	"erms/internal/metrics"
	"erms/internal/netsim"
	"erms/internal/sim"
	"erms/internal/topology"
)

// Config assembles an ERMS deployment over an existing HDFS cluster.
type Config struct {
	Thresholds Thresholds
	// StandbyPool lists the datanodes ERMS manages as its standby set. If
	// empty, the cluster's currently-standby nodes are adopted.
	StandbyPool []hdfs.DatanodeID
	// JudgePeriod is how often the Data Judge evaluates; defaults to the
	// thresholds' window.
	JudgePeriod time.Duration
	// NegotiationPeriod for the Condor scheduler; default 5s.
	NegotiationPeriod time.Duration
	// DisableAutoCommission keeps standby nodes down even when hot data
	// needs homes (used by ablation experiments).
	DisableAutoCommission bool
	// RepairRetry governs re-execution of failed or hung repair jobs. The
	// zero value gets production-ish defaults (6 attempts, 15s backoff
	// doubling to 4m, 15m hang timeout); set MaxAttempts to 1 explicitly
	// for no retry.
	RepairRetry condor.RetryPolicy
	// RepairRescanDelay is how long after a repair finally fails before
	// the damage sweep re-arms (the cluster may have healed — a restarted
	// node, a lifted partition — making the retry worthwhile). Default 30s.
	RepairRescanDelay time.Duration
	// Repair throttles the recovery pipeline: cluster-wide and per-node
	// stream caps plus an optional bandwidth budget. See RepairConfig.
	Repair RepairConfig
	// Scrub, when Period > 0, starts the cluster's background corruption
	// scrubber alongside the manager.
	Scrub hdfs.ScrubConfig
	// Registry receives the manager's counters (and the judge's and the
	// scheduler's). Nil makes the manager create a private registry, so
	// direct construction in tests keeps working unchanged.
	Registry *metrics.Registry
}

// Stats counts manager activity.
type Stats struct {
	Decisions   int
	Increases   int
	Decreases   int
	Encodes     int
	Decodes     int
	Commissions int
	Shutdowns   int
	Repairs     int
	FailedJobs  int
	// RepairsRetried counts repair attempts beyond each job's first.
	RepairsRetried int
	// RepairsDeferred counts repair candidates skipped because the
	// namenode was in safe mode when the damage sweep ran; RepairsThrottled
	// counts candidates held back by the cluster-wide stream cap. Both are
	// re-examined by later sweeps (and may be re-counted then).
	RepairsDeferred  int
	RepairsThrottled int
	// CorruptFound / CorruptFixed count corrupt replicas detected by the
	// cluster (scrubber, read checksums, rejoin reconciliation) and the
	// ones whose blocks a repair job subsequently restored.
	CorruptFound int
	CorruptFixed int
	// StaleNodes is the number of datanodes currently past StaleTimeout.
	StaleNodes int
	// TimeToRepair* are quantiles, in seconds of virtual time, of
	// damage-detected → block-healthy intervals.
	TimeToRepairP50 float64
	TimeToRepairP99 float64
}

// Manager is ERMS: it owns the judge, the Condor scheduler, the placement
// policy, and the standby pool.
type Manager struct {
	cluster *hdfs.Cluster
	judge   *Judge
	sched   *condor.Scheduler
	cfg     Config

	pool      map[hdfs.DatanodeID]bool
	inFlight  map[string]bool // path -> management job outstanding
	repairing map[hdfs.BlockID]bool
	// repairStart records when damage to a block was first scheduled for
	// repair, for time-to-repair accounting across retries.
	repairStart map[hdfs.BlockID]time.Duration
	// corruptPending marks blocks whose damage came from a detected
	// corrupt replica, so their eventual repair counts as CorruptFixed.
	corruptPending map[hdfs.BlockID]bool
	rescanArmed    bool
	scrubStop      func()
	history        []Decision
	ticker         interface{ Stop() }

	// Repair-throttling state: the optional bandwidth budget, in-flight
	// repair copies per target node, their cluster-wide total, and the
	// never-should-fire per-node cap tripwire the invariant oracle reads.
	bucket        *netsim.TokenBucket
	nodeStreams   map[hdfs.DatanodeID]int
	streams       int
	capViolations int

	// Activity counters live in the metrics registry; Stats() assembles
	// the legacy snapshot struct from them.
	reg *metrics.Registry
	ctr managerCounters
	ttr *metrics.Histogram
}

// managerCounters holds the registry-backed counters that replaced the
// old ad-hoc Stats fields.
type managerCounters struct {
	decisions, increases, decreases, encodes, decodes *metrics.Counter
	commissions, shutdowns, repairs, failedJobs       *metrics.Counter
	repairsRetried, corruptFound, corruptFixed        *metrics.Counter
	repairsDeferred, repairsThrottled                 *metrics.Counter
}

func newManagerCounters(r *metrics.Registry) managerCounters {
	return managerCounters{
		decisions:      r.Counter("erms_decisions_total"),
		increases:      r.Counter("erms_increases_total"),
		decreases:      r.Counter("erms_decreases_total"),
		encodes:        r.Counter("erms_encodes_total"),
		decodes:        r.Counter("erms_decodes_total"),
		commissions:    r.Counter("erms_commissions_total"),
		shutdowns:      r.Counter("erms_shutdowns_total"),
		repairs:        r.Counter("erms_repairs_total"),
		failedJobs:     r.Counter("erms_failed_jobs_total"),
		repairsRetried: r.Counter("erms_repairs_retried_total"),
		corruptFound:   r.Counter("erms_corrupt_found_total"),
		corruptFixed:   r.Counter("erms_corrupt_fixed_total"),

		repairsDeferred:  r.Counter("erms_repairs_deferred_total"),
		repairsThrottled: r.Counter("erms_repairs_throttled_total"),
	}
}

// New attaches ERMS to a cluster. It installs the Algorithm 1 placement
// policy, starts the Condor negotiator and the judging ticker, and
// advertises every datanode as a Condor machine.
func New(cluster *hdfs.Cluster, cfg Config) *Manager {
	cfg.Thresholds.applyDefaults()
	if cfg.JudgePeriod <= 0 {
		cfg.JudgePeriod = cfg.Thresholds.Window
	}
	if cfg.RepairRetry == (condor.RetryPolicy{}) {
		cfg.RepairRetry = condor.RetryPolicy{
			MaxAttempts: 6,
			Backoff:     15 * time.Second,
			MaxBackoff:  4 * time.Minute,
			Timeout:     15 * time.Minute,
		}
	}
	if cfg.RepairRescanDelay <= 0 {
		cfg.RepairRescanDelay = 30 * time.Second
	}
	cfg.Repair.applyDefaults(len(cluster.Datanodes()))
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	m := &Manager{
		cluster:        cluster,
		cfg:            cfg,
		pool:           map[hdfs.DatanodeID]bool{},
		inFlight:       map[string]bool{},
		repairing:      map[hdfs.BlockID]bool{},
		repairStart:    map[hdfs.BlockID]time.Duration{},
		corruptPending: map[hdfs.BlockID]bool{},
		nodeStreams:    map[hdfs.DatanodeID]int{},
		reg:            cfg.Registry,
	}
	if cfg.Repair.BandwidthMBps > 0 {
		// Burst of one block: a copy can always start promptly, but sustained
		// repair traffic is paced to the budget.
		m.bucket = netsim.NewTokenBucket(cluster.Clock(),
			cfg.Repair.BandwidthMBps*topology.MB, cluster.Config().BlockSize)
	}
	m.ctr = newManagerCounters(m.reg)
	m.ttr = m.reg.Histogram("erms_time_to_repair_seconds")
	m.reg.GaugeFunc("erms_stale_nodes", func() float64 { return float64(len(cluster.StaleNodes())) })
	m.reg.GaugeFunc("erms_repair_jobs_active", func() float64 { return float64(len(m.repairing)) })
	m.reg.GaugeFunc("erms_repair_streams", func() float64 { return float64(m.streams) })
	if len(cfg.StandbyPool) > 0 {
		for _, id := range cfg.StandbyPool {
			m.pool[id] = true
		}
	} else {
		for _, id := range cluster.Standby() {
			m.pool[id] = true
		}
	}
	m.judge = NewJudge(cluster, cfg.Thresholds)
	m.judge.CEP().RegisterMetrics(m.reg)
	cluster.SetPlacementPolicy(NewPlacement(func(id hdfs.DatanodeID) bool { return m.pool[id] }))

	m.sched = condor.New(cluster.Clock(), condor.Config{
		NegotiationPeriod: cfg.NegotiationPeriod,
		// "run the decreasing replication tasks and erasure encoding tasks
		// when the HDFS cluster is idle."
		IdleProbe: func() bool { return cluster.ActiveReads() == 0 },
	})
	m.sched.SetTracer(cluster.Tracer())
	m.sched.RegisterMetrics(m.reg)
	for _, d := range cluster.Datanodes() {
		m.sched.Advertise(d.Name, m.machineAd(d), 2)
	}

	m.ticker = sim.NewTicker(cluster.Clock(), cfg.JudgePeriod,
		func(time.Duration) { m.RunJudgeOnce() })

	// Datanode failures trigger an immediate repair pass: lost blocks of
	// encoded files are rebuilt from their stripes and under-replicated
	// plain blocks are re-replicated — ERMS routes the recovery work
	// through Condor so it is logged and replayable like everything else.
	cluster.OnDatanodeDown(func(hdfs.DatanodeID) { m.scheduleRepairs() })
	// A node coming (back) up changes both matchmaking and repair
	// feasibility: refresh its ad and re-sweep for blocks whose earlier
	// repairs found no target or source.
	cluster.OnDatanodeUp(func(hdfs.DatanodeID) {
		m.refreshAds()
		m.scheduleRepairs()
	})
	// Detected corruption quarantines a replica; route the re-replication
	// through the same Condor repair path and tag it for CorruptFixed.
	cluster.OnCorruptReplica(func(bid hdfs.BlockID, _ hdfs.DatanodeID) {
		m.ctr.corruptFound.Inc()
		m.corruptPending[bid] = true
		m.scheduleRepairs()
	})
	// Safe mode defers the damage sweep entirely; leaving it releases the
	// backlog in one prioritized pass.
	cluster.OnSafeMode(func(entered bool) {
		if !entered {
			m.scheduleRepairs()
		}
	})
	if cfg.Scrub.Period > 0 {
		m.scrubStop = cluster.StartScrubber(cfg.Scrub)
	}
	return m
}

// armRepairRescan schedules a single delayed damage sweep (coalescing
// multiple failures), so finally-failed repairs are re-attempted once the
// cluster has had a chance to heal.
func (m *Manager) armRepairRescan() {
	if m.rescanArmed {
		return
	}
	m.rescanArmed = true
	m.cluster.Clock().Schedule(m.cfg.RepairRescanDelay, func() {
		m.rescanArmed = false
		m.scheduleRepairs()
	})
}

// machineAd builds the Condor ClassAd describing a datanode: the mechanism
// the paper uses "to detect when datanodes are commissioned or
// decommissioned in the cluster".
func (m *Manager) machineAd(d *hdfs.Datanode) *classad.ClassAd {
	return classad.NewClassAd().
		Set("Name", d.Name).
		Set("Rack", m.cluster.Topology().Rack(topology.NodeID(d.ID))).
		Set("State", d.State.String()).
		Set("StandbyPool", m.pool[d.ID]).
		Set("FreeGB", d.Free()/topology.GB)
}

// refreshAds re-advertises datanodes after state changes.
func (m *Manager) refreshAds() {
	for _, d := range m.cluster.Datanodes() {
		m.sched.Advertise(d.Name, m.machineAd(d), 2)
	}
}

// Judge exposes the data judge.
func (m *Manager) Judge() *Judge { return m.judge }

// Scheduler exposes the Condor scheduler (its user log records every
// management task for replay).
func (m *Manager) Scheduler() *condor.Scheduler { return m.sched }

// Registry returns the metrics registry the manager's counters live in —
// the one passed via Config, or the private one created in its absence.
func (m *Manager) Registry() *metrics.Registry { return m.reg }

// Stats returns activity counters, with the derived fields (stale-node
// count, time-to-repair quantiles) computed as of now. The counts are
// assembled from the registry-backed counters that replaced the old
// struct fields.
func (m *Manager) Stats() Stats {
	return Stats{
		Decisions:        m.ctr.decisions.Int(),
		Increases:        m.ctr.increases.Int(),
		Decreases:        m.ctr.decreases.Int(),
		Encodes:          m.ctr.encodes.Int(),
		Decodes:          m.ctr.decodes.Int(),
		Commissions:      m.ctr.commissions.Int(),
		Shutdowns:        m.ctr.shutdowns.Int(),
		Repairs:          m.ctr.repairs.Int(),
		FailedJobs:       m.ctr.failedJobs.Int(),
		RepairsRetried:   m.ctr.repairsRetried.Int(),
		RepairsDeferred:  m.ctr.repairsDeferred.Int(),
		RepairsThrottled: m.ctr.repairsThrottled.Int(),
		CorruptFound:     m.ctr.corruptFound.Int(),
		CorruptFixed:     m.ctr.corruptFixed.Int(),
		StaleNodes:       len(m.cluster.StaleNodes()),
		TimeToRepairP50:  m.ttr.Quantile(0.50),
		TimeToRepairP99:  m.ttr.Quantile(0.99),
	}
}

// History returns every decision acted upon.
func (m *Manager) History() []Decision { return m.history }

// InStandbyPool reports pool membership.
func (m *Manager) InStandbyPool(id hdfs.DatanodeID) bool { return m.pool[id] }

// Stop halts the judging ticker, the Condor negotiator, and the
// corruption scrubber (when one was started).
func (m *Manager) Stop() {
	m.ticker.Stop()
	m.sched.Stop()
	if m.scrubStop != nil {
		m.scrubStop()
	}
}

// RunJudgeOnce evaluates the judge and schedules jobs for its decisions.
// It is called by the ticker but exposed for tests and tools. With
// tracing enabled the whole pass — CEP evaluation, decisions, job
// submissions, repair sweep — is one "judge.pass" span.
func (m *Manager) RunJudgeOnce() {
	tr := m.cluster.Tracer()
	sp := tr.Begin("judge.pass", tr.Current())
	prev := tr.Push(sp)
	decisions := m.judge.Evaluate()
	tr.SetAttrInt(sp, "decisions", int64(len(decisions)))
	for _, d := range decisions {
		if m.inFlight[d.Path] {
			continue
		}
		m.act(d)
	}
	// Each pass also sweeps for damage that arrived without a failure
	// notification (e.g. repairs that themselves failed).
	m.scheduleRepairs()
	tr.Pop(prev)
	tr.End(sp)
}

// act converts one decision into a Condor job.
func (m *Manager) act(d Decision) {
	m.history = append(m.history, d)
	m.ctr.decisions.Inc()
	path := d.Path
	var job *condor.Job
	switch d.Action {
	case ActionIncrease:
		m.ctr.increases.Inc()
		need := d.TargetRepl - m.cluster.ReplicationOf(path)
		if !m.cfg.DisableAutoCommission {
			m.commissionFor(need)
		}
		job = &condor.Job{
			Name:  fmt.Sprintf("replicate:%s:r%d", path, d.TargetRepl),
			Class: condor.ClassImmediate,
			Ad: classad.NewClassAd().
				SetExprString("Requirements", `target.State == "active"`).
				SetExprString("Rank", "target.FreeGB"),
			Run: func(_ *condor.Machine, done func(error)) {
				m.cluster.SetReplication(path, d.TargetRepl, hdfs.WholeAtOnce, done)
			},
			Rollback: func() {
				def := m.cluster.Config().DefaultReplication
				if m.cluster.ReplicationOf(path) > def {
					m.cluster.SetReplication(path, def, hdfs.WholeAtOnce, nil)
				}
			},
		}
	case ActionDecrease:
		m.ctr.decreases.Inc()
		job = &condor.Job{
			Name:  fmt.Sprintf("shrink:%s:r%d", path, d.TargetRepl),
			Class: condor.ClassIdle,
			Run: func(_ *condor.Machine, done func(error)) {
				m.cluster.SetReplication(path, d.TargetRepl, hdfs.WholeAtOnce, done)
			},
		}
	case ActionEncode:
		m.ctr.encodes.Inc()
		k := m.cfg.Thresholds.EncodeK
		if f := m.cluster.File(path); f != nil && len(f.Blocks) < k {
			k = len(f.Blocks)
		}
		mParity := m.cfg.Thresholds.EncodeM
		job = &condor.Job{
			Name:  fmt.Sprintf("encode:%s:rs(%d,%d)", path, k, mParity),
			Class: condor.ClassIdle,
			Run: func(_ *condor.Machine, done func(error)) {
				m.cluster.EncodeFile(path, k, mParity, done)
			},
			// A failed or hung encode may leave partial parity behind;
			// rolling back drops it and restores plain replication.
			Rollback: func() { _ = m.cluster.CancelEncoding(path) },
		}
	case ActionDecode:
		m.ctr.decodes.Inc()
		job = &condor.Job{
			Name:  fmt.Sprintf("decode:%s:r%d", path, d.TargetRepl),
			Class: condor.ClassImmediate,
			Run: func(_ *condor.Machine, done func(error)) {
				m.cluster.DecodeFile(path, d.TargetRepl, done)
			},
		}
	}
	m.inFlight[path] = true
	// Management jobs get a modest retry budget (transient failures —
	// mid-transfer node deaths, momentary target shortages — heal on their
	// own); terminal bookkeeping rides on Notify so inFlight is held
	// across retry backoffs and released even on watchdog timeouts.
	job.Retry = condor.RetryPolicy{
		MaxAttempts: 3,
		Backoff:     10 * time.Second,
		MaxBackoff:  time.Minute,
	}
	job.Notify = func(j *condor.Job) {
		delete(m.inFlight, path)
		if j.State != condor.StateCompleted {
			m.ctr.failedJobs.Inc()
		}
		m.afterJob(d)
	}
	// The decision instant links the judge pass to the Condor job: the
	// job span submitted under it parents there, so one hot file's chain
	// (audit burst → verdict → job → transfers) is a single tree.
	tr := m.cluster.Tracer()
	if tr.Enabled() {
		dsp := tr.Instant("judge.decision", tr.Current())
		tr.SetAttr(dsp, "path", path)
		tr.SetAttr(dsp, "action", d.Action.String())
		tr.SetAttrInt(dsp, "target", int64(d.TargetRepl))
		tr.SetAttrInt(dsp, "formula", int64(d.Formula))
		prev := tr.Push(dsp)
		defer tr.Pop(prev)
	}
	m.sched.Submit(job)
}

// afterJob runs post-action housekeeping: shrink/encode may have drained a
// pooled node, which can then power down; increases may need fresh ads.
func (m *Manager) afterJob(d Decision) {
	if d.Action == ActionDecrease || d.Action == ActionEncode {
		m.shutdownDrained()
	}
	m.refreshAds()
}

// commissionFor powers on enough pooled standby nodes to host `need` extra
// replicas (one replica per node).
func (m *Manager) commissionFor(need int) {
	if need <= 0 {
		return
	}
	for _, d := range m.cluster.Datanodes() {
		if need == 0 {
			break
		}
		if m.pool[d.ID] && d.State == hdfs.StateStandby {
			m.cluster.Commission(d.ID)
			m.ctr.commissions.Inc()
			need--
		}
	}
	m.refreshAds()
}

// shutdownDrained powers pooled nodes that hold no blocks back down
// ("after all data in a standby node are removed, ERMS could shut down
// that node for energy saving").
func (m *Manager) shutdownDrained() {
	for _, d := range m.cluster.Datanodes() {
		if m.pool[d.ID] && d.State == hdfs.StateActive && d.NumBlocks() == 0 {
			m.cluster.ToStandby(d.ID)
			m.ctr.shutdowns.Inc()
		}
	}
}

// EnergyReport summarizes pooled-node uptime for the energy-saving claim.
type EnergyReport struct {
	PoolNodes      int
	PoolActiveTime time.Duration // summed uptime across pooled nodes
	AllActiveTime  time.Duration // what keeping the pool always-on would cost
	SavedNodeHours float64
}

// Energy computes the report as of now.
func (m *Manager) Energy() EnergyReport {
	now := m.cluster.Clock().Now()
	var rep EnergyReport
	for id := range m.pool {
		rep.PoolNodes++
		d := m.cluster.Datanode(id)
		up := d.ActiveTime
		if d.State == hdfs.StateActive {
			// Still up: ActiveTime accrues on transition, so add the open
			// interval. The datanode tracks its own activeSince; approximate
			// with full-now minus accounted time only when currently active.
			up = d.ActiveTime + m.openInterval(d, now)
		}
		rep.PoolActiveTime += up
		rep.AllActiveTime += now
	}
	rep.SavedNodeHours = (rep.AllActiveTime - rep.PoolActiveTime).Hours()
	return rep
}

func (m *Manager) openInterval(d *hdfs.Datanode, now time.Duration) time.Duration {
	return d.OpenActiveInterval(now)
}
