package core

import (
	"fmt"
	"testing"
	"time"

	"erms/internal/hdfs"
)

// These tests drive the judge end-to-end through the cluster's ranged-read
// path (hdfs.ReadRange) rather than injecting CEP events directly: real
// preads audit as cmd=pread (invisible to formula (1)'s open count) while
// their block reads still feed the block stream — so the ε and M_M axes
// (formulas 2–3) fire on their own. Before ReadRange existed, whole-file
// reads made block counts track open counts and these axes were documented
// inert; each case here pins the exact threshold under pread traffic.

const testMB = 1 << 20

// pread issues n ranged reads of one 16 MB slice of the given block and
// drains the engine, so the judge's block stream sees exactly n reads of
// that block and the audit log sees n preads (zero opens).
func (f *judgeFix) pread(path string, blockIdx, n int) {
	f.t.Helper()
	bs := f.c.Config().BlockSize
	for i := 0; i < n; i++ {
		f.c.ReadRange(hdfs.ExternalClient, path, float64(blockIdx)*bs, 16*testMB, func(r *hdfs.ReadResult) {
			if r.Err != nil {
				f.t.Fatalf("pread of %s block %d: %v", path, blockIdx, r.Err)
			}
		})
	}
	f.e.Run()
}

// Formula (2) under ranged reads: one block crossing N_b / r > M_M marks
// the file hot with zero file-level opens. M_M=12, r=3: the line is 36
// preads on one block; formula (1) must stay silent throughout.
func TestJudgeRangedFormula2Boundary(t *testing.T) {
	cases := []struct {
		preads int
		wantF2 bool
	}{
		{36, false}, // 36/3 = M_M exactly
		{37, true},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("preads=%d", tc.preads), func(t *testing.T) {
			f := newJudgeFix(t, 18)
			f.create("/r2", 1, 3)
			f.pread("/r2", 0, tc.preads)
			ds := f.j.Evaluate()
			if got := byFormula(ds, "/r2", 1); len(got) != 0 {
				t.Fatalf("formula 1 fired on preads (opens should be zero): %v", got)
			}
			got := byFormula(ds, "/r2", 2)
			if tc.wantF2 != (len(got) == 1) {
				t.Fatalf("preads=%d: formula-2 decisions = %v, want present=%v", tc.preads, got, tc.wantF2)
			}
			if tc.wantF2 {
				if got[0].Action != ActionIncrease || got[0].Class != Hot {
					t.Fatalf("formula-2 decision = %+v, want hot increase", got[0])
				}
			}
		})
	}
}

// Formula (3) under ranged reads: the file is hot when more than ε of its
// blocks are individually intense (N_b / r > M_m). M_m=6, r=3: a block is
// intense past 18 preads. With 4 blocks and ε=0.5, 2 intense blocks sit on
// the line; 3 trigger. 35 preads per intense block stay below the
// formula-(2) line (35/3 < 12) while pushing mean per-block demand past the
// default-replication clamp, and opens stay at zero so formula (1) cannot
// be the cause.
func TestJudgeRangedFormula3Boundary(t *testing.T) {
	cases := []struct {
		intenseBlocks int
		wantF3        bool
	}{
		{2, false}, // 2/4 = ε exactly
		{3, true},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("intense=%d", tc.intenseBlocks), func(t *testing.T) {
			f := newJudgeFix(t, 18)
			f.create("/r3", 4, 3)
			for b := 0; b < tc.intenseBlocks; b++ {
				f.pread("/r3", b, 35)
			}
			ds := f.j.Evaluate()
			if got := byFormula(ds, "/r3", 1); len(got) != 0 {
				t.Fatalf("formula 1 fired on preads: %v", got)
			}
			if got := byFormula(ds, "/r3", 2); len(got) != 0 {
				t.Fatalf("formula 2 fired below its line: %v", got)
			}
			got := byFormula(ds, "/r3", 3)
			if tc.wantF3 != (len(got) == 1) {
				t.Fatalf("intense=%d: formula-3 decisions = %v, want present=%v",
					tc.intenseBlocks, got, tc.wantF3)
			}
		})
	}
}

// The intense-block line itself, end-to-end: 18 preads (N_b / r = M_m
// exactly) leave a block un-intense; 19 tip it. Two blocks are held well
// above the line and the boundary block decides whether the intense
// fraction is 2/4 (= ε, silent) or 3/4 (> ε, fires). The fourth block gets
// sub-line traffic so total demand clears the replication clamp without
// adding an intense block.
func TestJudgeRangedIntenseLineBoundary(t *testing.T) {
	cases := []struct {
		boundaryPreads int
		wantF3         bool
	}{
		{18, false}, // 18/3 = M_m exactly: not intense
		{19, true},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("preads=%d", tc.boundaryPreads), func(t *testing.T) {
			f := newJudgeFix(t, 18)
			f.create("/rm", 4, 3)
			f.pread("/rm", 0, 35)
			f.pread("/rm", 1, 35)
			f.pread("/rm", 2, tc.boundaryPreads)
			f.pread("/rm", 3, 18)
			ds := f.j.Evaluate()
			if got := byFormula(ds, "/rm", 2); len(got) != 0 {
				t.Fatalf("formula 2 fired below its line: %v", got)
			}
			got := byFormula(ds, "/rm", 3)
			if tc.wantF3 != (len(got) == 1) {
				t.Fatalf("boundary=%d preads: formula-3 decisions = %v, want present=%v",
					tc.boundaryPreads, got, tc.wantF3)
			}
		})
	}
}

// Preads keep a file warm: a file that would otherwise satisfy formula
// (6)'s cold rule (old, no opens, default replication) must not be encoded
// while it serves ranged reads, because the judge tracks pread liveness.
func TestJudgeRangedKeepsFileWarm(t *testing.T) {
	f := newJudgeFix(t, 18)
	f.create("/warm", 1, 2)
	f.create("/stale", 1, 2)
	f.e.RunUntil(3 * time.Hour) // both files now well past ColdAge
	f.pread("/warm", 0, 1)      // a single pread refreshes /warm only
	ds := f.j.Evaluate()
	if got := byFormula(ds, "/stale", 6); len(got) != 1 {
		t.Fatalf("untouched old file should encode: %v", ds)
	}
	if got := byFormula(ds, "/warm", 6); len(got) != 0 {
		t.Fatalf("pread-active file was classified cold: %v", got)
	}
}
