package core

import (
	"testing"
	"time"

	"erms/internal/hdfs"
	"erms/internal/sim"
	"erms/internal/topology"
)

// TestDeadNodeInSafeModeQueuesRepairs: a datanode death while the
// namenode is in safe mode must only queue the damage — counted
// repairs_deferred, classified in the tier queues — and submit nothing;
// leaving safe mode releases the backlog in one prioritized pass.
func TestDeadNodeInSafeModeQueuesRepairs(t *testing.T) {
	e := sim.NewEngine()
	h := hdfs.New(e, hdfs.Config{
		Topology: topology.New(topology.Config{}),
		SafeMode: hdfs.SafeModeConfig{Enabled: true},
	})
	m := New(h, Config{JudgePeriod: 24 * time.Hour})
	for _, p := range []string{"/q/a", "/q/b"} {
		if _, err := h.CreateFile(p, 192*mb, 3, -1); err != nil {
			t.Fatal(err)
		}
	}

	h.EnterSafeMode()
	h.Kill(2) // heartbeats off: declared dead synchronously, OnDatanodeDown fires now
	damaged := len(h.UnderReplicated())
	if damaged == 0 {
		t.Fatal("node death damaged nothing")
	}

	if got := m.Stats().RepairsDeferred; got != damaged {
		t.Fatalf("RepairsDeferred = %d, want %d", got, damaged)
	}
	if got := m.ActiveRepairJobs(); got != 0 {
		t.Fatalf("%d repair jobs submitted in safe mode", got)
	}
	depths := m.RepairQueueDepths()
	queued := 0
	for _, d := range depths {
		queued += d
	}
	if queued != damaged {
		t.Fatalf("tier queues hold %d blocks, want %d (depths %v)", queued, damaged, depths)
	}

	// Time passing changes nothing while the guard holds: the negotiator
	// runs, the judge ticks — no repair moves.
	e.RunUntil(5 * time.Minute)
	if got := m.Stats().Repairs; got != 0 {
		t.Fatalf("%d repairs ran during safe mode", got)
	}
	if got := len(h.UnderReplicated()); got != damaged {
		t.Fatalf("damage set drifted in safe mode: %d, want %d", got, damaged)
	}

	// Exit releases the backlog immediately (the OnSafeMode callback
	// re-arms the sweep; no rescan delay involved).
	h.LeaveSafeMode()
	if got := m.ActiveRepairJobs(); got != damaged {
		t.Fatalf("safe-mode exit admitted %d jobs, want %d", got, damaged)
	}
	e.RunUntil(30 * time.Minute)
	if got := len(h.UnderReplicated()); got != 0 {
		t.Fatalf("%d blocks still damaged after the backlog drained", got)
	}
	if got := m.Stats().Repairs; got != damaged {
		t.Fatalf("Repairs = %d, want %d", got, damaged)
	}
	if got := m.CapViolations(); got != 0 {
		t.Fatalf("CapViolations = %d", got)
	}
}
