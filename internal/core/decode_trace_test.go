package core

import (
	"testing"
	"time"
)

// TestDecodeGoldenTrace pins the judge's decode path on a recorded trace: a
// cold file is encoded, warms up again, and Formula 6 fires ActionDecode.
// The golden strings were captured from the engine before the typed
// incremental CEP pipeline landed; the refactor must reproduce them
// byte-for-byte.
func TestDecodeGoldenTrace(t *testing.T) {
	e, h, m := testbed(t, smallThresholds())
	h.CreateFile("/archive", 640*mb, 3, 0)
	h.CreateFile("/other", 64*mb, 3, 0)

	// Age both files past ColdAge with no accesses; the first judging pass
	// encodes them.
	e.RunUntil(40 * time.Minute)
	m.RunJudgeOnce()
	e.RunUntil(80 * time.Minute)
	if !h.File("/archive").Encoded || !h.File("/other").Encoded {
		t.Fatal("cold files not encoded")
	}

	// Warm the archive: the next pass must decode it immediately while the
	// untouched file stays encoded.
	h.ReadFile(2, "/archive", nil)
	e.RunUntil(81 * time.Minute)
	m.RunJudgeOnce()
	e.RunUntil(120 * time.Minute)
	if h.File("/archive").Encoded {
		t.Fatal("warmed file still encoded")
	}
	if h.File("/other").Encoded == false {
		t.Fatal("idle file should stay encoded")
	}

	var got []string
	for _, d := range m.History() {
		got = append(got, d.String())
	}
	want := []string{
		"  2400.0s cold     encode    /archive -> r=1 (formula 6: idle 40 min)",
		"  2400.0s cold     encode    /other -> r=1 (formula 6: idle 40 min)",
		"  4860.0s hot      decode    /archive -> r=3 (formula 6: encoded file accessed 1 times in window)",
		"  7200.0s cold     encode    /archive -> r=1 (formula 6: idle 40 min)",
	}
	if len(got) != len(want) {
		t.Fatalf("decision count = %d, want %d:\n%q", len(got), len(want), got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("decision %d =\n  %q\nwant\n  %q", i, got[i], want[i])
		}
	}
}
