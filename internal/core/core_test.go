package core

import (
	"testing"
	"time"

	"erms/internal/hdfs"
	"erms/internal/sim"
	"erms/internal/topology"
)

const mb = float64(topology.MB)

// testbed builds the paper's deployment: 18 datanodes in 3 racks, the
// first 10 active, the last 8 the ERMS standby pool.
func testbed(t *testing.T, th Thresholds) (*sim.Engine, *hdfs.Cluster, *Manager) {
	t.Helper()
	e := sim.NewEngine()
	topo := topology.New(topology.Config{})
	var standby []hdfs.DatanodeID
	for id := 10; id < 18; id++ {
		standby = append(standby, hdfs.DatanodeID(id))
	}
	h := hdfs.New(e, hdfs.Config{
		Topology:     topo,
		StandbyNodes: standby,
	})
	m := New(h, Config{
		Thresholds:  th,
		JudgePeriod: time.Hour, // tests call RunJudgeOnce explicitly
	})
	return e, h, m
}

func smallThresholds() Thresholds {
	return Thresholds{
		Window:   5 * time.Minute,
		TauM:     4,
		MM:       8,
		Mm:       4,
		Epsilon:  0.5,
		TauDN:    1000,
		TauD:     1,
		TauSmall: 0.5,
		ColdAge:  30 * time.Minute,
		EncodeK:  10, EncodeM: 4,
		MaxReplication:  10,
		CooldownWindows: 1,
	}
}

func TestDefaultsAndCalibration(t *testing.T) {
	th := Thresholds{}
	th.applyDefaults()
	if th.TauM != 8 || th.EncodeM != 4 || th.Window != 5*time.Minute {
		t.Fatalf("defaults: %+v", th)
	}
	if got := CalibrateTauM(80*mb, 8*mb); got != 10 {
		t.Fatalf("CalibrateTauM = %v, want 10", got)
	}
	if got := CalibrateTauM(0, 0); got != 8 {
		t.Fatalf("degenerate calibration = %v", got)
	}
}

func TestActionAndClassStrings(t *testing.T) {
	if ActionIncrease.String() != "increase" || ActionDecrease.String() != "decrease" ||
		ActionEncode.String() != "encode" || ActionDecode.String() != "decode" ||
		Action(9).String() != "unknown" {
		t.Fatal("action strings")
	}
	if Hot.String() != "hot" || Cooled.String() != "cooled" || Cold.String() != "cold" ||
		Normal.String() != "normal" {
		t.Fatal("class strings")
	}
}

func hammer(e *sim.Engine, h *hdfs.Cluster, path string, readers int) {
	for i := 0; i < readers; i++ {
		client := topology.NodeID(i % 10)
		h.ReadFile(client, path, nil)
	}
}

func TestJudgeFormula1Hot(t *testing.T) {
	e, h, m := testbed(t, smallThresholds())
	h.CreateFile("/hot", 64*mb, 3, 0)
	hammer(e, h, "/hot", 20) // N_d=20, r=3: 6.7 > τ_M 4
	e.RunUntil(time.Minute)
	ds := m.Judge().Evaluate()
	if len(ds) == 0 {
		t.Fatal("no decisions")
	}
	d := ds[0]
	if d.Path != "/hot" || d.Action != ActionIncrease || d.Formula != 1 {
		t.Fatalf("decision = %+v", d)
	}
	// r* = ceil(20/4) = 5.
	if d.TargetRepl != 5 {
		t.Fatalf("target = %d, want 5", d.TargetRepl)
	}
}

func TestJudgeFormula2SingleHotBlock(t *testing.T) {
	e, h, m := testbed(t, smallThresholds())
	f, _ := h.CreateFile("/skewed", 640*mb, 3, 0) // 10 blocks
	// Hammer one block only: block-level heat without file-level heat.
	for i := 0; i < 30; i++ {
		h.ReadBlock(topology.NodeID(i%10), f.Blocks[0], func(float64, hdfs.Locality, error) {})
	}
	e.RunUntil(time.Minute)
	ds := m.Judge().Evaluate()
	found := false
	for _, d := range ds {
		if d.Path == "/skewed" && d.Action == ActionIncrease && d.Formula == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("formula 2 not triggered: %v", ds)
	}
}

func TestJudgeFormula3ManyWarmBlocks(t *testing.T) {
	e, h, m := testbed(t, smallThresholds())
	f, _ := h.CreateFile("/warm", 256*mb, 3, 0) // 4 blocks
	// All 4 blocks moderately hot: 13 accesses each => N_b/r ≈ 4.3 > M_m=4
	// but <= M_M=8; 4/4 blocks > ε=0.5; file N_d via ReadBlock stays 0 so
	// formula 1 cannot fire.
	for b := 0; b < 4; b++ {
		for i := 0; i < 13; i++ {
			h.ReadBlock(topology.NodeID(i%10), f.Blocks[b], func(float64, hdfs.Locality, error) {})
		}
	}
	e.RunUntil(time.Minute)
	ds := m.Judge().Evaluate()
	found := false
	for _, d := range ds {
		if d.Path == "/warm" && d.Formula == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("formula 3 not triggered: %v", ds)
	}
}

func TestJudgeFormula4OverloadedDatanode(t *testing.T) {
	th := smallThresholds()
	th.TauM = 1000 // suppress formula 1
	th.MM = 1000
	th.Mm = 900
	th.TauDN = 10
	e, h, m := testbed(t, th)
	h.CreateFile("/busy", 64*mb, 1, 0) // single replica on node 0
	for i := 0; i < 15; i++ {
		h.ReadBlock(topology.NodeID(i%9+1), h.File("/busy").Blocks[0],
			func(float64, hdfs.Locality, error) {})
	}
	e.RunUntil(time.Minute)
	ds := m.Judge().Evaluate()
	found := false
	for _, d := range ds {
		if d.Path == "/busy" && d.Formula == 4 && d.Action == ActionIncrease {
			found = true
		}
	}
	if !found {
		t.Fatalf("formula 4 not triggered: %v", ds)
	}
}

func TestJudgeFormula5Cooled(t *testing.T) {
	e, h, m := testbed(t, smallThresholds())
	h.CreateFile("/cooled", 64*mb, 3, 0)
	var done bool
	h.SetReplication("/cooled", 6, hdfs.WholeAtOnce, func(error) { done = true })
	e.RunUntil(10 * time.Minute) // replicas land; no reads in window
	if !done {
		t.Fatal("setrep incomplete")
	}
	ds := m.Judge().Evaluate()
	found := false
	for _, d := range ds {
		if d.Path == "/cooled" && d.Action == ActionDecrease && d.Formula == 5 {
			if d.TargetRepl != 3 {
				t.Fatalf("cooled target = %d", d.TargetRepl)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("formula 5 not triggered: %v", ds)
	}
}

func TestJudgeFormula6Cold(t *testing.T) {
	e, h, m := testbed(t, smallThresholds())
	h.CreateFile("/cold", 128*mb, 3, 0)
	e.RunUntil(40 * time.Minute) // beyond ColdAge with no access
	ds := m.Judge().Evaluate()
	found := false
	for _, d := range ds {
		if d.Path == "/cold" && d.Action == ActionEncode {
			found = true
		}
	}
	if !found {
		t.Fatalf("formula 6 not triggered: %v", ds)
	}
}

func TestRecentAccessPreventsCold(t *testing.T) {
	e, h, m := testbed(t, smallThresholds())
	h.CreateFile("/touched", 64*mb, 3, 0)
	e.RunUntil(25 * time.Minute)
	h.ReadFile(1, "/touched", nil)
	e.RunUntil(40 * time.Minute)
	// Last access 15 min ago < ColdAge 30 min: not cold.
	for _, d := range m.Judge().Evaluate() {
		if d.Path == "/touched" && d.Action == ActionEncode {
			t.Fatalf("recently accessed file judged cold: %+v", d)
		}
	}
}

func TestManagerEndToEndHotCooledLifecycle(t *testing.T) {
	th := smallThresholds()
	e, h, m := testbed(t, th)
	h.CreateFile("/hot", 64*mb, 3, 0)
	hammer(e, h, "/hot", 24)
	e.RunUntil(time.Minute)
	m.RunJudgeOnce()
	e.RunUntil(10 * time.Minute)
	// r* = ceil(24/4) = 6: three extras, placed on commissioned pool nodes.
	if got := h.ReplicationOf("/hot"); got != 6 {
		t.Fatalf("replication = %d, want 6", got)
	}
	extrasOnPool := 0
	for _, r := range h.Replicas(h.File("/hot").Blocks[0]) {
		if m.InStandbyPool(r) {
			extrasOnPool++
		}
	}
	if extrasOnPool != 3 {
		t.Fatalf("extras on pool nodes = %d, want 3", extrasOnPool)
	}
	if m.Stats().Commissions == 0 {
		t.Fatal("no standby nodes were commissioned")
	}

	// Cool-down: a judging pass with an empty window shrinks it back and
	// powers the pool nodes off.
	e.RunUntil(20 * time.Minute) // window drains
	m.RunJudgeOnce()
	e.RunUntil(40 * time.Minute)
	if got := h.ReplicationOf("/hot"); got != 3 {
		t.Fatalf("replication after cooldown = %d, want 3", got)
	}
	st := m.Stats()
	if st.Decreases == 0 || st.Shutdowns == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Drained pool nodes powered down.
	for _, d := range h.Datanodes() {
		if m.InStandbyPool(d.ID) && d.NumBlocks() == 0 && d.State == hdfs.StateActive {
			t.Fatalf("drained pool node %s still active", d.Name)
		}
	}
}

func TestManagerEncodesColdAndDecodesOnAccess(t *testing.T) {
	th := smallThresholds()
	e, h, m := testbed(t, th)
	h.CreateFile("/archive", 640*mb, 3, 0)
	before := h.TotalUsed()
	e.RunUntil(40 * time.Minute)
	m.RunJudgeOnce()
	e.RunUntil(80 * time.Minute)
	f := h.File("/archive")
	if !f.Encoded {
		t.Fatal("cold file not encoded")
	}
	if h.TotalUsed() >= before {
		t.Fatal("encoding did not reduce storage")
	}
	if m.Stats().Encodes != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}

	// Access the archive: next judging pass decodes it immediately.
	h.ReadFile(2, "/archive", nil)
	e.RunUntil(81 * time.Minute)
	m.RunJudgeOnce()
	e.RunUntil(120 * time.Minute)
	if h.File("/archive").Encoded {
		t.Fatal("warmed file still encoded")
	}
	if got := h.ReplicationOf("/archive"); got != 3 {
		t.Fatalf("decoded replication = %d", got)
	}
	if m.Stats().Decodes != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

func TestIdleDeferralOfShrinkJobs(t *testing.T) {
	th := smallThresholds()
	e, h, m := testbed(t, th)
	h.CreateFile("/f", 64*mb, 6, 0) // over-replicated from the start
	// Keep the cluster busy with a continuous stream of reads.
	stopReads := false
	var pump func()
	pump = func() {
		if stopReads {
			return
		}
		h.ReadFile(3, "/f", func(*hdfs.ReadResult) { pump() })
	}
	pump()
	e.RunUntil(30 * time.Second)
	m.RunJudgeOnce() // cooled? N_d/r during busy window is high; force clean judge below
	e.RunUntil(time.Minute)
	// The file is NOT cooled while being read. Now stop reads, drain, and
	// judge again: shrink job is idle-class and must wait for idleness —
	// which arrives as soon as reads stop.
	stopReads = true
	e.RunUntil(16 * time.Minute) // window empties (5 min) + slack
	m.RunJudgeOnce()
	e.RunUntil(30 * time.Minute)
	if got := h.ReplicationOf("/f"); got != 3 {
		t.Fatalf("replication = %d, want 3 after idle shrink", got)
	}
}

func TestPlacementParityAvoidsDataNodes(t *testing.T) {
	e, h, m := testbed(t, smallThresholds())
	_ = m
	h.CreateFile("/cold", 320*mb, 3, 0) // 5 blocks
	var err error
	encoded := false
	h.EncodeFile("/cold", 5, 2, func(e2 error) { err = e2; encoded = true })
	e.RunUntil(10 * time.Minute)
	if err != nil || !encoded {
		t.Fatalf("encode: err=%v done=%v", err, encoded)
	}
	f := h.File("/cold")
	// Parity must not be on the standby pool and must prefer nodes with
	// few of the file's blocks.
	for _, pid := range f.Parity {
		for _, r := range h.Replicas(pid) {
			if m.InStandbyPool(r) {
				t.Fatalf("parity on pool node %d", r)
			}
		}
	}
	checkParityDisjoint(t, h, f)
}

func checkParityDisjoint(t *testing.T, h *hdfs.Cluster, f *hdfs.INode) {
	t.Helper()
	dataNodes := map[hdfs.DatanodeID]int{}
	for _, bid := range f.Blocks {
		for _, r := range h.Replicas(bid) {
			dataNodes[r]++
		}
	}
	for _, pid := range f.Parity {
		for _, r := range h.Replicas(pid) {
			if dataNodes[r] > 1 {
				t.Fatalf("parity node %d holds %d data blocks of the file", r, dataNodes[r])
			}
		}
	}
}

func TestEnergyReport(t *testing.T) {
	th := smallThresholds()
	e, h, m := testbed(t, th)
	h.CreateFile("/f", 64*mb, 3, 0)
	e.RunUntil(2 * time.Hour)
	rep := m.Energy()
	if rep.PoolNodes != 8 {
		t.Fatalf("pool nodes = %d", rep.PoolNodes)
	}
	if rep.PoolActiveTime != 0 {
		t.Fatalf("pool uptime = %v with no commissions", rep.PoolActiveTime)
	}
	if rep.SavedNodeHours < 15.9 || rep.SavedNodeHours > 16.1 { // 8 nodes x 2 h
		t.Fatalf("saved = %v node-hours", rep.SavedNodeHours)
	}
}

func TestUserLogRecordsManagementJobs(t *testing.T) {
	th := smallThresholds()
	e, h, m := testbed(t, th)
	h.CreateFile("/hot", 64*mb, 3, 0)
	hammer(e, h, "/hot", 24)
	e.RunUntil(time.Minute)
	m.RunJudgeOnce()
	e.RunUntil(10 * time.Minute)
	if m.Scheduler().Stats().Completed == 0 {
		t.Fatal("no management job recorded in the user log")
	}
	if len(m.History()) == 0 {
		t.Fatal("no decision history")
	}
	if m.History()[0].String() == "" {
		t.Fatal("decision string")
	}
}

func TestDisableAutoCommission(t *testing.T) {
	e := sim.NewEngine()
	topo := topology.New(topology.Config{})
	var standby []hdfs.DatanodeID
	for id := 10; id < 18; id++ {
		standby = append(standby, hdfs.DatanodeID(id))
	}
	h := hdfs.New(e, hdfs.Config{Topology: topo, StandbyNodes: standby})
	m := New(h, Config{
		Thresholds:            smallThresholds(),
		JudgePeriod:           time.Hour,
		DisableAutoCommission: true,
	})
	h.CreateFile("/hot", 64*mb, 3, 0)
	hammer(e, h, "/hot", 24)
	e.RunUntil(time.Minute)
	m.RunJudgeOnce()
	e.RunUntil(10 * time.Minute)
	if m.Stats().Commissions != 0 {
		t.Fatal("commissioned despite DisableAutoCommission")
	}
	// Extras land on active nodes instead.
	if got := h.ReplicationOf("/hot"); got != 6 {
		t.Fatalf("replication = %d, want 6 (on active nodes)", got)
	}
}

func TestRenameMigratesJudgeState(t *testing.T) {
	e, h, m := testbed(t, smallThresholds())
	h.CreateFile("/old", 64*mb, 3, 0)
	e.RunUntil(time.Minute)
	h.ReadFile(1, "/old", nil)
	e.RunUntil(2 * time.Minute)
	if at, ok := m.Judge().LastAccess("/old"); !ok || at != time.Minute {
		t.Fatalf("no access recorded: %v %v", at, ok)
	}
	if err := h.Rename("/old", "/new"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Judge().LastAccess("/old"); ok {
		t.Fatal("old path state not dropped")
	}
	at, ok := m.Judge().LastAccess("/new")
	if !ok || at == 0 {
		t.Fatalf("state not migrated: %v %v", at, ok)
	}
	// The renamed file keeps its age: 40 minutes after its only access it
	// is judged cold under the new name.
	e.RunUntil(45 * time.Minute)
	found := false
	for _, d := range m.Judge().Evaluate() {
		if d.Path == "/new" && d.Action == ActionEncode {
			found = true
		}
	}
	if !found {
		t.Fatal("renamed file did not age into cold")
	}
}

func TestDeleteDropsJudgeState(t *testing.T) {
	e, h, m := testbed(t, smallThresholds())
	h.CreateFile("/f", 64*mb, 3, 0)
	h.ReadFile(1, "/f", nil)
	e.RunUntil(time.Minute)
	if err := h.DeleteFile("/f"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Judge().LastAccess("/f"); ok {
		t.Fatal("deleted file's state retained")
	}
}

func TestCalibrateThresholdsFromTopology(t *testing.T) {
	topo := topology.New(topology.Config{DiskBW: 80 * mb})
	th := CalibrateThresholds(topo, 8*mb)
	if th.TauM != 10 {
		t.Fatalf("TauM = %v, want 10", th.TauM)
	}
	// Dependent bounds scale from the calibrated τ_M.
	if th.MM != 15 || th.Mm != 7.5 || th.TauDN != 60 {
		t.Fatalf("dependent bounds: MM=%v Mm=%v TauDN=%v", th.MM, th.Mm, th.TauDN)
	}
	// Zero rate falls back to the default floor.
	th2 := CalibrateThresholds(topo, 0)
	if th2.TauM != 10 {
		t.Fatalf("default-rate TauM = %v", th2.TauM)
	}
}
