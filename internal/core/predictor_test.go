package core

import (
	"testing"
	"testing/quick"
	"time"

	"erms/internal/hdfs"
	"erms/internal/sim"
	"erms/internal/topology"
)

func TestPredictorNeedsHistory(t *testing.T) {
	p := NewPredictor(0, 0)
	if _, ok := p.Predict("/x"); ok {
		t.Fatal("prediction with no history")
	}
	p.Observe("/x", 5)
	if _, ok := p.Predict("/x"); ok {
		t.Fatal("prediction with one observation")
	}
	p.Observe("/x", 6)
	if _, ok := p.Predict("/x"); !ok {
		t.Fatal("no prediction with two observations")
	}
	if p.Len() != 1 {
		t.Fatal("len")
	}
	p.Forget("/x")
	if p.Len() != 0 {
		t.Fatal("forget")
	}
}

func TestPredictorTracksRisingTrend(t *testing.T) {
	p := NewPredictor(0, 0)
	for _, v := range []float64{10, 20, 30, 40} {
		p.Observe("/ramp", v)
	}
	f, ok := p.Predict("/ramp")
	if !ok {
		t.Fatal("no forecast")
	}
	if f <= 40 {
		t.Fatalf("forecast %v should extrapolate above the last value 40", f)
	}
	if p.Trend("/ramp") <= 0 {
		t.Fatalf("trend = %v, want positive", p.Trend("/ramp"))
	}
}

func TestPredictorFlatAndFallingSeries(t *testing.T) {
	p := NewPredictor(0, 0)
	for i := 0; i < 6; i++ {
		p.Observe("/flat", 12)
	}
	f, _ := p.Predict("/flat")
	if f < 11 || f > 13 {
		t.Fatalf("flat forecast = %v, want ~12", f)
	}
	for _, v := range []float64{40, 30, 20, 10} {
		p.Observe("/fall", v)
	}
	if p.Trend("/fall") >= 0 {
		t.Fatal("falling series should have negative trend")
	}
	if _, hot := p.predictHot("/fall", 3, 1); hot {
		t.Fatal("falling series flagged predictively hot")
	}
}

func TestPredictorForecastNeverNegative(t *testing.T) {
	f := func(vals []uint8) bool {
		p := NewPredictor(0, 0)
		for _, v := range vals {
			p.Observe("/x", float64(v))
		}
		fc, ok := p.Predict("/x")
		return !ok || fc >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClampForecast(t *testing.T) {
	if got := clampForecast(1000, 20); got != 50 {
		t.Fatalf("clamp = %v, want 50 (2*20+10)", got)
	}
	if got := clampForecast(30, 20); got != 30 {
		t.Fatalf("clamp = %v, want 30 (below limit)", got)
	}
}

// rampTestbed drives a linearly ramping read load and reports the virtual
// time at which the judge first decided to increase replication.
func rampReactionTime(t *testing.T, predictive bool) time.Duration {
	t.Helper()
	e := sim.NewEngine()
	topo := topology.New(topology.Config{})
	h := hdfs.New(e, hdfs.Config{Topology: topo})
	th := smallThresholds()
	th.Predictive = predictive
	m := New(h, Config{Thresholds: th, JudgePeriod: th.Window})
	if _, err := h.CreateFile("/ramp", 64*mb, 3, 0); err != nil {
		t.Fatal(err)
	}
	// Demand ramps 2, 4, 6, ... reads per minute: the reactive rule fires
	// once a 5-min window holds > τ_M*r = 12 accesses; the predictor sees
	// the slope earlier.
	for minute := 0; minute < 40; minute++ {
		readers := 2 * (minute + 1)
		min := minute
		e.Schedule(time.Duration(min)*time.Minute, func() {
			for i := 0; i < readers; i++ {
				h.ReadFile(topology.NodeID(i%10), "/ramp", nil)
			}
		})
	}
	e.RunUntil(45 * time.Minute)
	m.Stop()
	for _, d := range m.History() {
		if d.Action == ActionIncrease {
			return d.Time
		}
	}
	return -1
}

func TestPredictiveJudgeReactsEarlier(t *testing.T) {
	reactive := rampReactionTime(t, false)
	predictive := rampReactionTime(t, true)
	if reactive < 0 || predictive < 0 {
		t.Fatalf("no increase decision: reactive=%v predictive=%v", reactive, predictive)
	}
	if predictive > reactive {
		t.Fatalf("predictive judge reacted at %v, later than reactive %v",
			predictive, reactive)
	}
}

func TestPredictiveDecisionRecordsFormula7(t *testing.T) {
	e := sim.NewEngine()
	topo := topology.New(topology.Config{})
	h := hdfs.New(e, hdfs.Config{Topology: topo})
	th := smallThresholds()
	th.Predictive = true
	th.TauM = 4
	m := New(h, Config{Thresholds: th, JudgePeriod: time.Hour})
	if _, err := h.CreateFile("/f", 64*mb, 3, 0); err != nil {
		t.Fatal(err)
	}
	// Feed the judge a rising series below the reactive threshold at the
	// moment of evaluation but with a forecast above it. Times are
	// absolute virtual minutes.
	feed := func(minuteStart int, reads int) {
		for i := 0; i < reads; i++ {
			i := i
			e.At(time.Duration(minuteStart)*time.Minute+time.Duration(i)*time.Second,
				func() { h.ReadFile(topology.NodeID(i%10), "/f", nil) })
		}
	}
	feed(0, 4)
	e.RunUntil(5 * time.Minute)
	m.RunJudgeOnce() // observe 4
	feed(5, 12)
	e.RunUntil(10 * time.Minute)
	m.RunJudgeOnce() // observe 12: reactive needs >12, forecast ~12.4 fires
	found := false
	for _, d := range m.History() {
		if d.Formula == 7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no predictive decision in %v", m.History())
	}
}
