// Package core implements ERMS itself — the elastic replication management
// system of the paper: the Data Judge (a CEP consumer classifying data as
// hot, cooled, normal or cold via the paper's formulas (1)–(6)), the
// replica placement strategy of Algorithm 1, the Active/Standby storage
// model with energy accounting, and the manager that turns judge decisions
// into Condor jobs acting on the simulated HDFS cluster.
package core

import (
	"math"
	"time"

	"erms/internal/topology"
)

// Thresholds are the paper's tunables. All "per replica" rates are counts
// per judging window divided by the file's current replication factor r.
type Thresholds struct {
	// Window is the CEP sliding time window t_w over which access counts
	// are taken. Default 5 min.
	Window time.Duration
	// TauM (τ_M) is the largest per-window access count one replica can
	// absorb: N_d/r > τ_M ⇒ hot (Formula 1). The paper measures τ_M ≈ 8
	// for its hardware (Figure 8). Default 8.
	TauM float64
	// MM (M_M) is the per-replica access bound for a single block:
	// ∃i N_bi/r > M_M ⇒ hot (Formula 2). Default 12.
	MM float64
	// Mm (M_m < M_M) is the lower per-block bound used with Epsilon:
	// count(N_bj/r > M_m)/n_d > ε ⇒ hot (Formula 3). Default 6.
	Mm float64
	// Epsilon (ε ∈ (0,1)) is the fraction of blocks that must be intensely
	// accessed for Formula 3. Default 0.5.
	Epsilon float64
	// TauDN (τ_DN) bounds the block accesses a datanode serves per window
	// (Formula 4); beyond it the file contributing most load gains
	// replicas. Default 48.
	TauDN float64
	// TauD (τ_d) is the cooled threshold: N_d/r < τ_d with extra replicas
	// ⇒ cooled, drop back to default (Formula 5). Default 1.
	TauD float64
	// TauSmall (τ_m < τ_d) is the cold access threshold (Formula 6).
	// Default 0.5.
	TauSmall float64
	// ColdAge is t in Formula 6: a file additionally needs
	// now-lastAccess > ColdAge to be cold. Default 2h.
	ColdAge time.Duration
	// CooldownWindows is the hysteresis on Formula 5: a file must look
	// cooled for this many consecutive judge passes before its extra
	// replicas are reclaimed. Without it a file whose demand hovers near
	// the threshold thrashes between increase and decrease, and every
	// cycle re-copies gigabytes. Default 2.
	CooldownWindows int
	// MaxReplication caps r* (bounded by cluster size p+q at evaluation
	// time as well). Default 10.
	MaxReplication int
	// EncodeK/EncodeM are the erasure stripe geometry for cold data; the
	// paper uses Reed–Solomon with four parities. Defaults 10 and 4.
	EncodeK, EncodeM int
	// Predictive enables the trend predictor (the paper's future-work
	// item): a file whose forecast next-window demand already exceeds
	// τ_M·r is replicated one window early. Off by default — the paper's
	// published system is purely reactive.
	Predictive bool
}

// DefaultThresholds returns the paper-calibrated defaults.
func DefaultThresholds() Thresholds {
	return Thresholds{
		Window:          5 * time.Minute,
		TauM:            8,
		MM:              12,
		Mm:              6,
		Epsilon:         0.5,
		TauDN:           48,
		TauD:            1,
		TauSmall:        0.5,
		ColdAge:         2 * time.Hour,
		CooldownWindows: 2,
		MaxReplication:  10,
		EncodeK:         10,
		EncodeM:         4,
	}
}

func (t *Thresholds) applyDefaults() {
	d := DefaultThresholds()
	if t.Window <= 0 {
		t.Window = d.Window
	}
	if t.TauM <= 0 {
		t.TauM = d.TauM
	}
	// The per-block and per-datanode bounds scale with τ_M so that tuning
	// τ_M (the paper's ERMS_τM=8/6/4 series) moves the whole family of hot
	// rules coherently: M_M = 1.5·τ_M, M_m = 0.75·τ_M, τ_DN = 6·τ_M. At
	// the default τ_M = 8 these give the canonical 12 / 6 / 48.
	if t.MM <= 0 {
		t.MM = 1.5 * t.TauM
	}
	if t.Mm <= 0 {
		t.Mm = 0.75 * t.TauM
	}
	if t.Epsilon <= 0 || t.Epsilon >= 1 {
		t.Epsilon = d.Epsilon
	}
	if t.TauDN <= 0 {
		t.TauDN = 6 * t.TauM
	}
	if t.TauD <= 0 {
		t.TauD = d.TauD
	}
	if t.TauSmall <= 0 {
		t.TauSmall = d.TauSmall
	}
	if t.ColdAge <= 0 {
		t.ColdAge = d.ColdAge
	}
	if t.CooldownWindows <= 0 {
		t.CooldownWindows = d.CooldownWindows
	}
	if t.MaxReplication <= 0 {
		t.MaxReplication = d.MaxReplication
	}
	if t.EncodeK <= 0 {
		t.EncodeK = d.EncodeK
	}
	if t.EncodeM <= 0 {
		t.EncodeM = d.EncodeM
	}
}

// CalibrateTauM derives τ_M from the cluster hardware: the number of
// concurrent readers one replica (one disk) can serve while every client
// still sees at least minClientRate — the measurement behind the paper's
// Figure 8 ("the maximum of τ_M in our environment" is 8). ERMS "could
// dynamically change these thresholds based on system environments"; this
// is that computation.
func CalibrateTauM(diskBW, minClientRate float64) float64 {
	if minClientRate <= 0 || diskBW <= 0 {
		return DefaultThresholds().TauM
	}
	return math.Floor(diskBW / minClientRate)
}

// DefaultMinClientRate is the acceptable per-client streaming floor used
// for calibration (8 MB/s against an 80 MB/s disk gives τ_M = 10; the
// paper's slightly slower effective disks give 8–10).
const DefaultMinClientRate = 8 * topology.MB

// CalibrateThresholds derives a full threshold set from the cluster's own
// hardware: τ_M from the disk-bandwidth/client-rate ratio, with the
// dependent bounds scaling from it. This is the paper's "ERMS could
// dynamically change these thresholds based on system environments" made
// concrete — pass the result to Config.Thresholds (optionally overriding
// individual fields first).
func CalibrateThresholds(topo *topology.Topology, minClientRate float64) Thresholds {
	if minClientRate <= 0 {
		minClientRate = DefaultMinClientRate
	}
	diskBW := 0.0
	if len(topo.Nodes) > 0 {
		diskBW = topo.Links[topo.Nodes[0].Disk].Capacity
	}
	th := Thresholds{TauM: CalibrateTauM(diskBW, minClientRate)}
	th.applyDefaults()
	return th
}
