package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"erms/internal/auditlog"
	"erms/internal/cep"
	"erms/internal/hdfs"
)

// Action is what the judge wants done to a file.
type Action int

// Judge actions.
const (
	// ActionIncrease raises a hot file's replication to TargetRepl
	// (scheduled immediately).
	ActionIncrease Action = iota
	// ActionDecrease returns a cooled file to the default factor
	// (scheduled when idle).
	ActionDecrease
	// ActionEncode erasure-codes a cold file (scheduled when idle).
	ActionEncode
	// ActionDecode restores an encoded file that warmed up (immediate).
	ActionDecode
)

// String names the action for logs and reports.
func (a Action) String() string {
	switch a {
	case ActionIncrease:
		return "increase"
	case ActionDecrease:
		return "decrease"
	case ActionEncode:
		return "encode"
	case ActionDecode:
		return "decode"
	}
	return "unknown"
}

// DataType is the paper's four-way classification.
type DataType int

// Data classes ("the data in HDFS could be classified into four types").
const (
	Normal DataType = iota
	Hot
	Cooled
	Cold
)

// String names the temperature class for logs and reports.
func (d DataType) String() string {
	switch d {
	case Hot:
		return "hot"
	case Cooled:
		return "cooled"
	case Cold:
		return "cold"
	}
	return "normal"
}

// Decision is one judge output.
type Decision struct {
	Time       time.Duration
	Path       string
	Class      DataType
	Action     Action
	TargetRepl int
	// Formula records which of the paper's formulas (1)-(6) triggered the
	// decision (0 for the datanode-overload rule's companion).
	Formula int
	Reason  string
}

// String renders the decision as one aligned report line.
func (d Decision) String() string {
	return fmt.Sprintf("%8.1fs %-8s %-9s %s -> r=%d (formula %d: %s)",
		d.Time.Seconds(), d.Class, d.Action, d.Path, d.TargetRepl, d.Formula, d.Reason)
}

// Typed CEP schemas for the judge's two input streams. Declaring the field
// layout once lets the audit and block-read subscribers emit fixed-slot
// events with no per-event map or boxing allocations.
var (
	accessSchema = cep.NewSchema("Access", "path", "cmd", "ip")
	blockSchema  = cep.NewSchema("BlockAccess", "path", "block", "datanode")
)

// Slot indices for the schemas above (order matches NewSchema).
const (
	accessPath = iota
	accessCmd
	accessIP
)

const (
	blockPath = iota
	blockBlock
	blockDatanode
)

// Judge consumes the cluster's audit and block-read streams through the
// CEP engine and classifies files each window.
type Judge struct {
	cluster *hdfs.Cluster
	engine  *cep.Engine
	th      Thresholds

	fileStmt  *cep.Statement
	blockStmt *cep.Statement
	dnStmt    *cep.Statement

	lastAccess map[string]time.Duration
	coolStreak map[string]int // consecutive cooled-looking judge passes
	predictor  *Predictor     // nil unless Thresholds.Predictive
}

// NewJudge builds a judge over the cluster with the given thresholds. It
// wires the audit log (file opens) and block-read events into the CEP
// engine — the paper's log-parser → CEP pipeline.
func NewJudge(cluster *hdfs.Cluster, th Thresholds) *Judge {
	th.applyDefaults()
	j := &Judge{
		cluster:    cluster,
		th:         th,
		lastAccess: make(map[string]time.Duration),
		coolStreak: make(map[string]int),
	}
	if th.Predictive {
		j.predictor = NewPredictor(0, 0)
	}
	j.engine = cep.New(func() time.Duration { return cluster.Clock().Now() })
	j.engine.SetTracer(cluster.Tracer())
	w := fmt.Sprintf("%d s", int(th.Window.Seconds()))
	j.fileStmt = j.engine.MustCompile(
		"select path, count(*) as cnt from Access.win:time(" + w + ") " +
			"where cmd = 'open' group by path").SetLabel("files")
	j.blockStmt = j.engine.MustCompile(
		"select path, block, count(*) as cnt from BlockAccess.win:time(" + w + ") " +
			"group by path, block").SetLabel("blocks")
	j.dnStmt = j.engine.MustCompile(
		"select datanode, count(*) as cnt from BlockAccess.win:time(" + w + ") " +
			"group by datanode").SetLabel("datanodes")

	// The paper's log parser: audit records become CEP events.
	cluster.Audit().Subscribe(func(r auditlog.Record) {
		if (r.Cmd == auditlog.CmdOpen || r.Cmd == auditlog.CmdPread) && r.Allowed {
			// Preads keep a file warm (formula 6 must not encode a file that
			// serves ranged reads) but do NOT enter the formula-(1) open
			// count — the fileStmt query filters cmd='open'.
			j.lastAccess[r.Src] = r.Time
		}
		// Namespace changes migrate or drop the judge's per-file state so a
		// renamed file keeps its age and a recreated path starts fresh.
		switch r.Cmd {
		case auditlog.CmdRename:
			if t, ok := j.lastAccess[r.Src]; ok {
				j.lastAccess[r.Dst] = t
				delete(j.lastAccess, r.Src)
			}
			if s, ok := j.coolStreak[r.Src]; ok {
				j.coolStreak[r.Dst] = s
				delete(j.coolStreak, r.Src)
			}
			if j.predictor != nil {
				j.predictor.Rename(r.Src, r.Dst)
			}
		case auditlog.CmdDelete:
			delete(j.lastAccess, r.Src)
			delete(j.coolStreak, r.Src)
			if j.predictor != nil {
				j.predictor.Forget(r.Src)
			}
		}
		cev := accessSchema.Event(r.Time)
		cev.SetStr(accessPath, r.Src)
		cev.SetStr(accessCmd, string(r.Cmd))
		cev.SetStr(accessIP, r.IP)
		j.engine.Insert(cev)
	})
	cluster.OnBlockRead(func(ev hdfs.BlockReadEvent) {
		bev := blockSchema.Event(ev.Time)
		bev.SetStr(blockPath, ev.Path)
		bev.SetNum(blockBlock, float64(ev.Block))
		bev.SetNum(blockDatanode, float64(ev.Datanode))
		j.engine.Insert(bev)
	})
	return j
}

// Thresholds returns the judge's effective thresholds.
func (j *Judge) Thresholds() Thresholds { return j.th }

// CEP exposes the underlying engine (tests, extensions).
func (j *Judge) CEP() *cep.Engine { return j.engine }

// LastAccess returns the last observed open time for path and whether one
// was seen.
func (j *Judge) LastAccess(path string) (time.Duration, bool) {
	t, ok := j.lastAccess[path]
	return t, ok
}

// optimalReplication computes r* for a hot file: enough replicas that the
// per-replica access count falls to τ_M, clamped to [default, min(MaxRepl,
// p+q)].
func (j *Judge) optimalReplication(nd float64) int {
	r := int(math.Ceil(nd / j.th.TauM))
	if def := j.cluster.Config().DefaultReplication; r < def {
		r = def
	}
	max := j.th.MaxReplication
	if nodes := j.cluster.NumDatanodes(); max > nodes {
		max = nodes
	}
	if r > max {
		r = max
	}
	return r
}

// Evaluate runs the paper's judging pass over the current window and
// returns the decisions, deterministically ordered by path.
func (j *Judge) Evaluate() []Decision {
	now := j.cluster.Clock().Now()
	var out []Decision

	// Collect window aggregates. EachRow streams typed columns straight off
	// the incremental group state — no Row maps on the hot path.
	fileCnt := map[string]float64{}
	j.fileStmt.MustEachRow(func(cols []cep.Val) {
		fileCnt[cols[0].Str()] = cols[1].Num()
	})
	blockCnt := map[string]map[hdfs.BlockID]float64{}
	j.blockStmt.MustEachRow(func(cols []cep.Val) {
		p := cols[0].Str()
		if blockCnt[p] == nil {
			blockCnt[p] = map[hdfs.BlockID]float64{}
		}
		blockCnt[p][hdfs.BlockID(cols[1].Num())] = cols[2].Num()
	})

	hotTarget := map[string]Decision{}
	markHot := func(path string, nd float64, formula int, reason string) {
		target := j.optimalReplication(nd)
		if cur := j.cluster.ReplicationOf(path); target <= cur {
			return
		}
		if prev, ok := hotTarget[path]; ok && prev.TargetRepl >= target {
			return
		}
		hotTarget[path] = Decision{
			Time: now, Path: path, Class: Hot, Action: ActionIncrease,
			TargetRepl: target, Formula: formula, Reason: reason,
		}
	}

	// Per-file rules over every live file.
	paths := j.sortedPaths()
	for _, path := range paths {
		f := j.cluster.File(path)
		r := float64(j.cluster.ReplicationOf(path))
		if r <= 0 {
			continue
		}
		nd := fileCnt[path]
		def := float64(j.cluster.Config().DefaultReplication)

		if f.Encoded {
			// Warmed-up encoded file: restore replication immediately.
			if nd/r >= j.th.TauD {
				out = append(out, Decision{
					Time: now, Path: path, Class: Hot, Action: ActionDecode,
					TargetRepl: int(def), Formula: 6,
					Reason: fmt.Sprintf("encoded file accessed %.0f times in window", nd),
				})
			}
			continue
		}

		// Formula (1): mean per-replica file accesses.
		if nd/r > j.th.TauM {
			markHot(path, nd, 1, fmt.Sprintf("N_d/r = %.1f > τ_M %.0f", nd/r, j.th.TauM))
		}
		// Predictive rule (future work): act one window early on a rising
		// trend whose forecast already clears the hot threshold.
		if j.predictor != nil {
			j.predictor.Observe(path, nd)
			if forecast, hot := j.predictor.predictHot(path, r, j.th.TauM); hot {
				f := clampForecast(forecast, nd)
				markHot(path, f, 7, fmt.Sprintf("forecast N_d = %.0f (trend %+.1f/window)",
					f, j.predictor.Trend(path)))
			}
		}
		// Formulas (2) and (3): per-block intensity.
		if bc := blockCnt[path]; len(bc) > 0 {
			nBlocks := len(f.Blocks)
			intense := 0
			var maxB, totalB float64
			for _, cnt := range bc {
				totalB += cnt
				if cnt/r > j.th.MM && cnt > maxB {
					maxB = cnt
				}
				if cnt/r > j.th.Mm {
					intense++
				}
			}
			if maxB > 0 {
				markHot(path, maxB, 2, fmt.Sprintf("block N_b/r = %.1f > M_M %.0f", maxB/r, j.th.MM))
			}
			if nBlocks > 0 && float64(intense)/float64(nBlocks) > j.th.Epsilon {
				// Demand signal: average accesses per block (file-level
				// opens are zero when clients read blocks directly).
				avg := totalB / float64(nBlocks)
				if nd > avg {
					avg = nd
				}
				markHot(path, avg, 3, fmt.Sprintf("%d/%d blocks above M_m", intense, nBlocks))
			}
		}

		// Formula (5): cooled — extra replicas no longer earning their
		// keep. Hysteresis: the file must look cooled for CooldownWindows
		// consecutive passes, or marginal demand thrashes replicas.
		if r > def && nd/r < j.th.TauD {
			j.coolStreak[path]++
			if j.coolStreak[path] >= j.th.CooldownWindows {
				j.coolStreak[path] = 0
				out = append(out, Decision{
					Time: now, Path: path, Class: Cooled, Action: ActionDecrease,
					TargetRepl: int(def), Formula: 5,
					Reason: fmt.Sprintf("N_d/r = %.2f < τ_d %.1f", nd/r, j.th.TauD),
				})
			}
			continue
		}
		j.coolStreak[path] = 0

		// Formula (6): cold — quiet and old.
		last, seen := j.lastAccess[path]
		if !seen {
			last = f.CreatedAt
		}
		if nd/r < j.th.TauSmall && now-last > j.th.ColdAge && r <= def {
			out = append(out, Decision{
				Time: now, Path: path, Class: Cold, Action: ActionEncode,
				TargetRepl: 1, Formula: 6,
				Reason: fmt.Sprintf("idle %.0f min", (now - last).Minutes()),
			})
		}
	}

	// Formula (4): overloaded datanodes — boost the file contributing the
	// most accesses on that node.
	j.dnStmt.MustEachRow(func(cols []cep.Val) {
		cnt := cols[1].Num()
		if cnt <= j.th.TauDN {
			return
		}
		dn := hdfs.DatanodeID(cols[0].Num())
		if top, nd, ok := j.topContributor(dn, blockCnt); ok {
			markHot(top, nd, 4, fmt.Sprintf("datanode %d served %.0f block reads > τ_DN %.0f",
				dn, cnt, j.th.TauDN))
		}
	})

	for _, path := range sortedKeys(hotTarget) {
		out = append(out, hotTarget[path])
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Path != out[b].Path {
			return out[a].Path < out[b].Path
		}
		return out[a].Formula < out[b].Formula
	})
	return out
}

// topContributor finds the file whose blocks on dn received the most
// window accesses ("the data D that contributes the largest access to DN").
func (j *Judge) topContributor(dn hdfs.DatanodeID, blockCnt map[string]map[hdfs.BlockID]float64) (string, float64, bool) {
	best := ""
	var bestCnt, bestTotal float64
	for _, path := range sortedKeys(blockCnt) {
		f := j.cluster.File(path)
		if f == nil || f.Encoded {
			continue
		}
		var onNode, total float64
		for bid, cnt := range blockCnt[path] {
			total += cnt
			for _, r := range j.cluster.Replicas(bid) {
				if r == dn {
					onNode += cnt
					break
				}
			}
		}
		if onNode > bestCnt {
			best, bestCnt, bestTotal = path, onNode, total
		}
	}
	return best, bestTotal, best != ""
}

func (j *Judge) sortedPaths() []string {
	var out []string
	for _, fc := range j.allFiles() {
		out = append(out, fc)
	}
	sort.Strings(out)
	return out
}

// allFiles enumerates cluster file paths. The hdfs package exposes files
// individually; we walk via the audit-independent accessor.
func (j *Judge) allFiles() []string {
	return j.cluster.FilePaths()
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
