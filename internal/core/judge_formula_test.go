package core

import (
	"fmt"
	"testing"
	"time"

	"erms/internal/auditlog"
	"erms/internal/hdfs"
	"erms/internal/sim"
	"erms/internal/topology"
)

// These tests pin the paper's formulas (1)-(6) at their exact boundary
// values: each threshold comparison is exercised one count below, at, and
// one count above the line, so a drift from strict to non-strict (or the
// reverse) in any formula fails a named case. Events are injected straight
// into the judge's typed CEP streams, bypassing the cluster's read path,
// so the counts are exact.

type judgeFix struct {
	t *testing.T
	e *sim.Engine
	c *hdfs.Cluster
	j *Judge
}

func newJudgeFix(t *testing.T, nodes int) *judgeFix {
	t.Helper()
	e := sim.NewEngine()
	topo := topology.New(topology.Config{Racks: 3, NodeCount: nodes})
	c := hdfs.New(e, hdfs.Config{Topology: topo})
	return &judgeFix{t: t, e: e, c: c, j: NewJudge(c, Thresholds{})}
}

func (f *judgeFix) create(path string, blocks, repl int) *hdfs.INode {
	f.t.Helper()
	size := float64(blocks) * f.c.Config().BlockSize
	if _, err := f.c.CreateFile(path, size, repl, -1); err != nil {
		f.t.Fatalf("create %s: %v", path, err)
	}
	return f.c.File(path)
}

// opens injects n file-open events for path at the current virtual time.
func (f *judgeFix) opens(path string, n int) {
	for i := 0; i < n; i++ {
		ev := accessSchema.Event(f.e.Now())
		ev.SetStr(accessPath, path)
		ev.SetStr(accessCmd, string(auditlog.CmdOpen))
		ev.SetStr(accessIP, "10.0.0.9")
		f.j.engine.Insert(ev)
	}
}

// blockReads injects n block-read events for one block, attributed to dn.
func (f *judgeFix) blockReads(path string, bid hdfs.BlockID, dn hdfs.DatanodeID, n int) {
	for i := 0; i < n; i++ {
		ev := blockSchema.Event(f.e.Now())
		ev.SetStr(blockPath, path)
		ev.SetNum(blockBlock, float64(bid))
		ev.SetNum(blockDatanode, float64(dn))
		f.j.engine.Insert(ev)
	}
}

// byFormula filters decisions for path down to the given formula number.
func byFormula(ds []Decision, path string, formula int) []Decision {
	var out []Decision
	for _, d := range ds {
		if d.Path == path && d.Formula == formula {
			out = append(out, d)
		}
	}
	return out
}

// Formula (1): a file is hot when N_d / r > τ_M, strictly. Defaults: τ_M=8,
// r=3, so 24 opens sit exactly on the line and must not trigger.
func TestJudgeFormula1Boundary(t *testing.T) {
	cases := []struct {
		opens      int
		wantHot    bool
		wantTarget int
	}{
		{23, false, 0},
		{24, false, 0}, // 24/3 = τ_M exactly: not hot
		{25, true, 4},  // 25/3 > τ_M; r* = ceil(25/8) = 4
		{48, true, 6},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("opens=%d", tc.opens), func(t *testing.T) {
			f := newJudgeFix(t, 18)
			f.create("/f1", 1, 3)
			f.opens("/f1", tc.opens)
			got := byFormula(f.j.Evaluate(), "/f1", 1)
			if tc.wantHot {
				if len(got) != 1 {
					t.Fatalf("want one formula-1 decision, got %v", got)
				}
				d := got[0]
				if d.Action != ActionIncrease || d.Class != Hot || d.TargetRepl != tc.wantTarget {
					t.Fatalf("decision = %+v, want increase to %d", d, tc.wantTarget)
				}
			} else if len(got) != 0 {
				t.Fatalf("want no formula-1 decision at the boundary, got %v", got)
			}
		})
	}
}

// Formula (2): a single block with N_b / r > M_M marks the file hot. With
// M_M=12 and r=3 the line is 36 reads on one block.
func TestJudgeFormula2Boundary(t *testing.T) {
	cases := []struct {
		reads  int
		wantF2 bool
	}{
		{36, false}, // 36/3 = M_M exactly
		{37, true},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("reads=%d", tc.reads), func(t *testing.T) {
			f := newJudgeFix(t, 18)
			inode := f.create("/f2", 1, 3)
			f.blockReads("/f2", inode.Blocks[0], 0, tc.reads)
			ds := f.j.Evaluate()
			got := byFormula(ds, "/f2", 2)
			if tc.wantF2 != (len(got) == 1) {
				t.Fatalf("reads=%d: formula-2 decisions = %v, want present=%v", tc.reads, got, tc.wantF2)
			}
		})
	}
}

// Formula (3): the file is hot when the fraction of blocks with
// N_b / r > M_m exceeds ε, strictly. With 4 blocks and ε=0.5, 2 intense
// blocks (ratio exactly 0.5) must not trigger; 3 must. 35 reads per
// intense block keeps each below the formula-(2) line (35/3 < 12).
func TestJudgeFormula3Boundary(t *testing.T) {
	cases := []struct {
		intenseBlocks int
		wantF3        bool
	}{
		{2, false}, // 2/4 = ε exactly
		{3, true},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("intense=%d", tc.intenseBlocks), func(t *testing.T) {
			f := newJudgeFix(t, 18)
			inode := f.create("/f3", 4, 3)
			for i := 0; i < tc.intenseBlocks; i++ {
				// One serving node per block keeps every node at 35 reads,
				// below τ_DN, so formula (4) cannot outrank this one.
				f.blockReads("/f3", inode.Blocks[i], hdfs.DatanodeID(i), 35)
			}
			ds := f.j.Evaluate()
			if got := byFormula(ds, "/f3", 2); len(got) != 0 {
				t.Fatalf("formula 2 fired unexpectedly: %v", got)
			}
			got := byFormula(ds, "/f3", 3)
			if tc.wantF3 != (len(got) == 1) {
				t.Fatalf("intense=%d: formula-3 decisions = %v, want present=%v",
					tc.intenseBlocks, got, tc.wantF3)
			}
		})
	}
}

// Formula (4): a datanode serving more than τ_DN block reads in the window
// boosts its top contributing file. τ_DN=48, so 48 reads on one node sit
// on the line. The reads are split 25/24 (or 24/24) across two of the
// file's four blocks so neither formula (2) nor (3) can fire first and
// mask the attribution.
func TestJudgeFormula4Boundary(t *testing.T) {
	cases := []struct {
		first, second int
		wantF4        bool
	}{
		{24, 24, false}, // 48 = τ_DN exactly
		{25, 24, true},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("reads=%d", tc.first+tc.second), func(t *testing.T) {
			f := newJudgeFix(t, 18)
			inode := f.create("/f4", 4, 3)
			dn := f.c.Replicas(inode.Blocks[0])[0]
			f.blockReads("/f4", inode.Blocks[0], dn, tc.first)
			f.blockReads("/f4", inode.Blocks[1], dn, tc.second)
			ds := f.j.Evaluate()
			for _, formula := range []int{2, 3} {
				if got := byFormula(ds, "/f4", formula); len(got) != 0 {
					t.Fatalf("formula %d fired and would mask formula 4: %v", formula, got)
				}
			}
			got := byFormula(ds, "/f4", 4)
			if tc.wantF4 != (len(got) == 1) {
				t.Fatalf("%d reads on node %d: formula-4 decisions = %v, want present=%v",
					tc.first+tc.second, dn, got, tc.wantF4)
			}
		})
	}
}

// Formula (5): a file with r above the default cools down when
// N_d / r < τ_d, strictly, and only after CooldownWindows consecutive
// cooled passes. r=4, τ_d=1: 3 opens per window cools, 4 sits on the line.
func TestJudgeFormula5CooldownBoundary(t *testing.T) {
	pass := func(f *judgeFix, opens int) []Decision {
		f.e.RunUntil(f.e.Now() + 6*time.Minute) // previous window expires
		f.opens("/f5", opens)
		return f.j.Evaluate()
	}

	t.Run("two_cooled_passes_trigger", func(t *testing.T) {
		f := newJudgeFix(t, 18)
		f.create("/f5", 1, 4)
		if ds := pass(f, 3); len(byFormula(ds, "/f5", 5)) != 0 {
			t.Fatalf("decision after one cooled pass: %v", ds)
		}
		ds := pass(f, 3)
		got := byFormula(ds, "/f5", 5)
		if len(got) != 1 || got[0].Action != ActionDecrease || got[0].TargetRepl != 3 {
			t.Fatalf("want decrease-to-3 after second cooled pass, got %v", ds)
		}
	})

	t.Run("boundary_ratio_never_cools", func(t *testing.T) {
		f := newJudgeFix(t, 18)
		f.create("/f5", 1, 4)
		for i := 0; i < 3; i++ {
			if ds := pass(f, 4); len(byFormula(ds, "/f5", 5)) != 0 { // 4/4 = τ_d exactly
				t.Fatalf("pass %d: cooled at the boundary ratio: %v", i, ds)
			}
		}
	})

	t.Run("streak_resets_on_warm_pass", func(t *testing.T) {
		f := newJudgeFix(t, 18)
		f.create("/f5", 1, 4)
		pass(f, 3)                                               // streak 1
		pass(f, 4)                                               // warm: streak resets
		if ds := pass(f, 3); len(byFormula(ds, "/f5", 5)) != 0 { // streak 1 again
			t.Fatalf("cooled fired without consecutive passes: %v", ds)
		}
		if ds := pass(f, 3); len(byFormula(ds, "/f5", 5)) != 1 {
			t.Fatalf("cooled missing after streak rebuilt: %v", ds)
		}
	})
}

// Formula (6), cold side: a file goes cold when N_d / r < τ_small AND its
// last access is more than ColdAge ago AND r is at most the default.
// Defaults: τ_small=0.5, ColdAge=2h. With r=2, one open in the window sits
// exactly on the ratio line; an age of exactly 2h sits on the age line.
func TestJudgeFormula6ColdBoundary(t *testing.T) {
	cases := []struct {
		name     string
		age      time.Duration
		opens    int
		wantCold bool
	}{
		{"age_exactly_coldage", 2 * time.Hour, 0, false},
		{"age_past_coldage", 2*time.Hour + time.Second, 0, true},
		{"ratio_exactly_tausmall", 2*time.Hour + time.Second, 1, false}, // 1/2 = τ_small
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newJudgeFix(t, 18)
			f.create("/f6", 1, 2) // CreatedAt = 0; never opened via audit
			f.e.RunUntil(tc.age)
			if tc.opens > 0 {
				f.opens("/f6", tc.opens)
			}
			ds := f.j.Evaluate()
			got := byFormula(ds, "/f6", 6)
			if tc.wantCold {
				if len(got) != 1 || got[0].Action != ActionEncode || got[0].TargetRepl != 1 {
					t.Fatalf("want encode-to-1 decision, got %v", ds)
				}
			} else if len(got) != 0 {
				t.Fatalf("cold fired at the boundary: %v", got)
			}
		})
	}
}

// Formula (6), decode side: an encoded file warms back up when
// N_d / r >= τ_d — non-strict, unlike the hot rule, so demand equal to
// the line already restores replication. r=3, τ_d=1: 3 opens trigger.
func TestJudgeDecodeBoundary(t *testing.T) {
	cases := []struct {
		opens      int
		wantDecode bool
	}{
		{2, false},
		{3, true}, // 3/3 = τ_d exactly: decode is >=, so this fires
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("opens=%d", tc.opens), func(t *testing.T) {
			f := newJudgeFix(t, 18)
			inode := f.create("/f6d", 1, 3)
			inode.Encoded = true // stand in for a completed EncodeFile
			f.opens("/f6d", tc.opens)
			ds := f.j.Evaluate()
			got := byFormula(ds, "/f6d", 6)
			if tc.wantDecode {
				if len(got) != 1 || got[0].Action != ActionDecode || got[0].TargetRepl != 3 {
					t.Fatalf("want decode-to-3 decision, got %v", ds)
				}
			} else if len(got) != 0 {
				t.Fatalf("decode fired below the line: %v", got)
			}
		})
	}
}

// optimalReplication's clamp: r* = ceil(N_d / τ_M) bounded below by the
// default factor and above by min(MaxReplication, cluster size).
func TestOptimalReplicationClamp(t *testing.T) {
	big := newJudgeFix(t, 18) // 18 nodes > MaxReplication 10
	cases := []struct {
		nd   float64
		want int
	}{
		{1, 3},   // below default: clamps up
		{24, 3},  // ceil(24/8) = 3 = default
		{25, 4},  // first value past the default
		{80, 10}, // ceil(80/8) = MaxReplication exactly
		{81, 10}, // clamped by MaxReplication
	}
	for _, tc := range cases {
		if got := big.j.optimalReplication(tc.nd); got != tc.want {
			t.Errorf("optimalReplication(%v) = %d, want %d", tc.nd, got, tc.want)
		}
	}

	small := newJudgeFix(t, 6) // cluster smaller than MaxReplication
	if got := small.j.optimalReplication(81); got != 6 {
		t.Errorf("optimalReplication(81) on 6 nodes = %d, want 6 (node clamp)", got)
	}
}
