package core

import (
	"sort"

	"erms/internal/hdfs"
	"erms/internal/topology"
)

// Placement implements the paper's Algorithm 1 as a pluggable HDFS policy:
//
//   - erasure parity blocks go to the active node holding the fewest
//     blocks of the same file (so losing one node cannot take the parity
//     and much of the data together);
//   - blocks below the default factor use the stock rack-aware policy;
//   - extra replicas of hot data (r >= r_D) go to standby-pool nodes that
//     do not yet hold the block, preferring nodes in the same rack as an
//     existing replica, then any active node;
//   - deletions drain standby-pool nodes first, so shrinking never
//     requires rebalancing among the always-on nodes.
type Placement struct {
	base *hdfs.DefaultPolicy
	// pool reports whether a datanode belongs to the standby pool (nodes
	// ERMS commissions on demand and later powers back down).
	pool func(hdfs.DatanodeID) bool
}

// NewPlacement builds the ERMS policy; pool identifies standby-pool nodes
// (nil means no pool, degrading gracefully to default-like behaviour for
// extras).
func NewPlacement(pool func(hdfs.DatanodeID) bool) *Placement {
	if pool == nil {
		pool = func(hdfs.DatanodeID) bool { return false }
	}
	return &Placement{base: hdfs.NewDefaultPolicy(), pool: pool}
}

// Name implements hdfs.Policy.
func (p *Placement) Name() string { return "erms-algorithm1" }

// ChooseTargets implements hdfs.Policy.
func (p *Placement) ChooseTargets(c *hdfs.Cluster, b *hdfs.Block, count int, writer hdfs.DatanodeID, exclude map[hdfs.DatanodeID]bool) []hdfs.DatanodeID {
	if b.Parity {
		return p.parityTargets(c, b, count, exclude)
	}
	cur := len(c.Replicas(b.ID))
	rD := c.Config().DefaultReplication
	if cur < rD {
		// Below default factor: stock rack-aware placement, but never put
		// base replicas on the standby pool — pooled nodes may power off.
		need := rD - cur
		if need > count {
			need = count
		}
		ex := p.excludePool(c, exclude)
		base := p.base.ChooseTargets(c, b, need, writer, ex)
		if len(base) < need {
			// Pool nodes as a last resort (tiny active set).
			more := p.base.ChooseTargets(c, b, need-len(base), writer, merge(exclude, asSet(base)))
			base = append(base, more...)
		}
		if count > need {
			more := p.extraTargets(c, b, count-need, merge(exclude, asSet(base)))
			base = append(base, more...)
		}
		return base
	}
	return p.extraTargets(c, b, count, exclude)
}

// extraTargets places extra (hot-data) replicas: standby-pool nodes first,
// preferring same-rack-as-existing-replica, then fewest blocks; falling
// back to active non-pool nodes.
func (p *Placement) extraTargets(c *hdfs.Cluster, b *hdfs.Block, count int, exclude map[hdfs.DatanodeID]bool) []hdfs.DatanodeID {
	replicaRacks := map[int]bool{}
	for _, r := range c.Replicas(b.ID) {
		replicaRacks[c.Topology().Rack(topology.NodeID(r))] = true
	}
	type cand struct {
		id   hdfs.DatanodeID
		tier int // 0: pool+same rack, 1: pool, 2: active non-pool
		load int
		rack int
	}
	var cands []cand
	holder := map[hdfs.DatanodeID]bool{}
	for _, r := range c.Replicas(b.ID) {
		holder[r] = true
	}
	rackCount := map[int]int{} // replicas (existing + chosen) per rack
	for _, r := range c.Replicas(b.ID) {
		rackCount[c.Topology().Rack(topology.NodeID(r))]++
	}
	for _, d := range c.Datanodes() {
		if !d.Eligible() || c.NodeUnreachable(d.ID) || holder[d.ID] || exclude[d.ID] || d.UncommittedFree() < b.Size {
			continue
		}
		rack := c.Topology().Rack(topology.NodeID(d.ID))
		tier := 2
		if p.pool(d.ID) {
			tier = 1
			if replicaRacks[rack] {
				tier = 0
			}
		}
		cands = append(cands, cand{id: d.ID, tier: tier, load: d.PlacementLoad(), rack: rack})
	}
	// Greedy pick: prefer pool nodes (same-rack first for cheap transfer),
	// but balance replicas across racks so no single rack uplink carries a
	// disproportionate share of the hot file's read traffic.
	var out []hdfs.DatanodeID
	used := map[hdfs.DatanodeID]bool{}
	for len(out) < count {
		bestIdx := -1
		for i, cd := range cands {
			if used[cd.id] {
				continue
			}
			if bestIdx < 0 {
				bestIdx = i
				continue
			}
			b2 := cands[bestIdx]
			ci := [4]int{cd.tier, rackCount[cd.rack], cd.load, int(cd.id)}
			cb := [4]int{b2.tier, rackCount[b2.rack], b2.load, int(b2.id)}
			for k := range ci {
				if ci[k] != cb[k] {
					if ci[k] < cb[k] {
						bestIdx = i
					}
					break
				}
			}
		}
		if bestIdx < 0 {
			break
		}
		chosen := cands[bestIdx]
		used[chosen.id] = true
		rackCount[chosen.rack]++
		out = append(out, chosen.id)
	}
	return out
}

// parityTargets: "select the active node that contains the minimum number
// of data block of the same data."
func (p *Placement) parityTargets(c *hdfs.Cluster, b *hdfs.Block, count int, exclude map[hdfs.DatanodeID]bool) []hdfs.DatanodeID {
	f := c.File(b.File)
	blocksOf := map[hdfs.DatanodeID]int{}
	if f != nil {
		for _, ids := range [][]hdfs.BlockID{f.Blocks, f.Parity} {
			for _, bid := range ids {
				for _, r := range c.Replicas(bid) {
					blocksOf[r]++
				}
			}
		}
	}
	type cand struct {
		id     hdfs.DatanodeID
		ofFile int
		load   int
	}
	var cands []cand
	for _, d := range c.Datanodes() {
		if !d.Eligible() || c.NodeUnreachable(d.ID) || exclude[d.ID] || d.UncommittedFree() < b.Size ||
			d.HasBlock(b.ID) || p.pool(d.ID) {
			continue
		}
		cands = append(cands, cand{id: d.ID, ofFile: blocksOf[d.ID], load: d.PlacementLoad()})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].ofFile != cands[j].ofFile {
			return cands[i].ofFile < cands[j].ofFile
		}
		if cands[i].load != cands[j].load {
			return cands[i].load < cands[j].load
		}
		return cands[i].id < cands[j].id
	})
	var out []hdfs.DatanodeID
	for _, cd := range cands {
		if len(out) == count {
			break
		}
		out = append(out, cd.id)
		blocksOf[cd.id]++ // keep later parities spreading
	}
	return out
}

// ChooseExcess implements hdfs.Policy: "ERMS could prefer to delete them
// from standby nodes" — pooled replicas drain first (most-loaded pooled
// node first so nodes empty out and can power down), then the default
// policy picks among the always-on nodes.
func (p *Placement) ChooseExcess(c *hdfs.Cluster, b *hdfs.Block) (hdfs.DatanodeID, bool) {
	var best hdfs.DatanodeID = -1
	bestLoad := -1
	for _, r := range c.Replicas(b.ID) {
		if !p.pool(r) {
			continue
		}
		if load := c.Datanode(r).NumBlocks(); load > bestLoad ||
			(load == bestLoad && r > best) {
			best, bestLoad = r, load
		}
	}
	if best >= 0 {
		return best, true
	}
	return p.base.ChooseExcess(c, b)
}

// ChooseKeeper implements hdfs.KeeperChooser: when a cold file drops to
// one replica per block, keep it on an always-on node (pool nodes want to
// power down) hosting the fewest stripe members, so the RS code retains
// its full failure tolerance and the standby pool still drains.
func (p *Placement) ChooseKeeper(c *hdfs.Cluster, b *hdfs.Block, stripeLoad map[hdfs.DatanodeID]int) (hdfs.DatanodeID, bool) {
	var best hdfs.DatanodeID = -1
	bestKey := [4]int{1 << 30, 1 << 30, 1 << 30, 1 << 30}
	for _, r := range c.Replicas(b.ID) {
		d := c.Datanode(r)
		if d.State == hdfs.StateDown || d.Crashed() || d.CorruptBlock(b.ID) {
			continue
		}
		poolPenalty := 0
		if p.pool(r) {
			poolPenalty = 1
		}
		key := [4]int{poolPenalty, stripeLoad[r], d.PlacementLoad(), int(r)}
		if best < 0 || less4(key, bestKey) {
			best, bestKey = r, key
		}
	}
	return best, best >= 0
}

func less4(a, b [4]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func (p *Placement) excludePool(c *hdfs.Cluster, exclude map[hdfs.DatanodeID]bool) map[hdfs.DatanodeID]bool {
	out := map[hdfs.DatanodeID]bool{}
	for k, v := range exclude {
		out[k] = v
	}
	for _, d := range c.Datanodes() {
		if p.pool(d.ID) {
			out[d.ID] = true
		}
	}
	return out
}

func asSet(ids []hdfs.DatanodeID) map[hdfs.DatanodeID]bool {
	m := map[hdfs.DatanodeID]bool{}
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func merge(a, b map[hdfs.DatanodeID]bool) map[hdfs.DatanodeID]bool {
	out := map[hdfs.DatanodeID]bool{}
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}
