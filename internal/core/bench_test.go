package core

import (
	"fmt"
	"testing"
	"time"

	"erms/internal/auditlog"
	"erms/internal/hdfs"
	"erms/internal/sim"
	"erms/internal/topology"
)

// benchCluster builds the standard 18-node testbed with nFiles populated
// files and a window's worth of audit + block-read traffic already flowing
// through the judge's CEP statements.
func benchCluster(b *testing.B, nFiles, reads int) (*sim.Engine, *Manager) {
	b.Helper()
	e := sim.NewEngine()
	topo := topology.New(topology.Config{})
	var standby []hdfs.DatanodeID
	for id := 10; id < 18; id++ {
		standby = append(standby, hdfs.DatanodeID(id))
	}
	h := hdfs.New(e, hdfs.Config{Topology: topo, StandbyNodes: standby})
	m := New(h, Config{
		Thresholds:  smallThresholds(),
		JudgePeriod: time.Hour, // drive judging manually
	})
	for i := 0; i < nFiles; i++ {
		if _, err := h.CreateFile(fmt.Sprintf("/bench/f%03d", i), 192*mb, 3, 0); err != nil {
			b.Fatal(err)
		}
	}
	// Spread reads across files (hotter toward low indices) inside the
	// judging window so every statement's groups are populated.
	for i := 0; i < reads; i++ {
		path := fmt.Sprintf("/bench/f%03d", (i*i)%nFiles)
		e.Schedule(time.Duration(i)*100*time.Millisecond, func() {
			h.ReadFile(2, path, nil)
		})
	}
	e.RunUntil(4 * time.Minute) // all reads issued and streamed
	return e, m
}

// BenchmarkJudgePass is the repo's end-to-end perf baseline: one full
// judging pass (CEP aggregate evaluation plus formulas 1-6) over a
// populated window. This is the ERMS inner loop the incremental typed
// pipeline optimizes.
func BenchmarkJudgePass(b *testing.B) {
	_, m := benchCluster(b, 50, 2000)
	j := m.Judge()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ds := j.Evaluate(); len(ds) == 0 {
			b.Fatal("expected decisions from a hot window")
		}
	}
}

// BenchmarkAuditIngest measures the log-parser edge: one audit record
// flowing through the judge's subscriber into the typed Access event and
// the CEP window.
func BenchmarkAuditIngest(b *testing.B) {
	_, m := benchCluster(b, 8, 0)
	audit := m.Judge().cluster.Audit()
	rec := auditlog.Record{
		Allowed: true, UGI: "hadoop", IP: "10.0.0.2",
		Cmd: auditlog.CmdOpen, Src: "/bench/f001",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Time = time.Duration(i) * time.Millisecond
		audit.Append(rec)
	}
}
