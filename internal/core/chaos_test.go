package core

import (
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"erms/internal/chaos"
	"erms/internal/condor"
	"erms/internal/hdfs"
	"erms/internal/sim"
	"erms/internal/topology"
	"erms/internal/workload"
)

// chaosOutcome captures everything a chaos soak run produced, in a form
// that can be both asserted on and compared byte-for-byte across runs.
type chaosOutcome struct {
	report    chaos.Report
	stats     Stats
	sched     condor.Stats
	running   int
	pending   int
	condorLog string
	metrics   hdfs.Metrics
	lost      int
	under     int
	readsOK   int
	readsBad  int
}

// runChaosStorm drives a full ERMS deployment (heartbeat detection,
// scrubbing, Condor retries) through a seeded fault storm — crashes,
// rack partitions healed within DeadTimeout, silent corruption, slow
// nodes — plus a heavy-tailed read workload, then runs to quiescence.
// Consistency invariants are checked inside when t is non-nil.
func runChaosStorm(t *testing.T, seed int64, dur time.Duration) chaosOutcome {
	e := sim.NewEngine()
	topo := topology.New(topology.Config{})
	var pool []hdfs.DatanodeID
	for id := 10; id < 18; id++ {
		pool = append(pool, hdfs.DatanodeID(id))
	}
	h := hdfs.New(e, hdfs.Config{
		Topology:     topo,
		StandbyNodes: pool,
		Heartbeat: hdfs.HeartbeatConfig{
			Enabled:      true,
			Interval:     3 * time.Second,
			StaleTimeout: 30 * time.Second,
			DeadTimeout:  4 * time.Minute,
		},
	})
	m := New(h, Config{
		Thresholds:  Thresholds{TauM: 6, Window: 5 * time.Minute, ColdAge: 90 * time.Minute},
		JudgePeriod: 5 * time.Minute,
		Scrub:       hdfs.ScrubConfig{Period: 20 * time.Second, BlocksPerScan: 100},
	})

	trace := workload.Synthesize(workload.Config{
		Seed:             seed,
		Duration:         dur * 2 / 3, // quiet tail lets cold data encode
		NumFiles:         16,
		MeanInterarrival: 10 * time.Second,
		MaxFileSize:      512 * mb,
	})
	workload.Preload(e, h, trace)
	out := chaosOutcome{}
	workload.ReplayReads(e, h, trace, func(r *hdfs.ReadResult) {
		if r.Err != nil {
			out.readsBad++
		} else {
			out.readsOK++
		}
	})

	// The storm: ≥6 crashes, rack partitions that heal inside DeadTimeout
	// (2m mean, ≤3m jittered, vs 4m dead), ≥10 corruptions, slow nodes.
	var victims []hdfs.DatanodeID
	for id := 0; id < 10; id++ {
		victims = append(victims, hdfs.DatanodeID(id))
	}
	plan := chaos.Storm(chaos.StormConfig{
		Seed:        seed + 100,
		Duration:    dur,
		Nodes:       victims,
		Racks:       []int{0, 1, 2},
		Crashes:     8,
		Downtime:    8 * time.Minute,
		Partitions:  2,
		Corruptions: 14,
		SlowNodes:   2,
	})
	rep := plan.Schedule(e, h)

	e.RunUntil(dur)
	e.RunFor(45 * time.Minute) // quiescence: retries, rescans, encodes drain
	m.Stop()

	out.report = *rep
	out.stats = m.Stats()
	out.sched = m.Scheduler().Stats()
	out.running = m.Scheduler().Running()
	out.pending = m.Scheduler().Pending()
	var sb strings.Builder
	for _, ev := range m.Scheduler().Log() {
		sb.WriteString(ev.String())
		sb.WriteByte('\n')
	}
	out.condorLog = sb.String()
	out.metrics = h.Metrics()
	out.lost = len(h.UnrecoverableBlocks())
	for _, bid := range h.UnderReplicated() {
		if !h.Block(bid).Parity {
			out.under++
		}
	}

	if t != nil {
		checkClusterConsistency(t, h)
		// The user log alone must reconstruct every job's final state —
		// the paper's replayability claim, under six hours of faults.
		states := condor.ReconstructStates(m.Scheduler().Log())
		for _, j := range m.Scheduler().Jobs() {
			if got := states[j.ID]; got != j.State {
				t.Errorf("job %d (%s): replay says %s, actual %s", j.ID, j.Name, got, j.State)
			}
		}
	}
	return out
}

// checkClusterConsistency verifies replica/node-set agreement across the
// whole namespace.
func checkClusterConsistency(t *testing.T, h *hdfs.Cluster) {
	t.Helper()
	for _, path := range h.FilePaths() {
		f := h.File(path)
		for _, bid := range append(append([]hdfs.BlockID{}, f.Blocks...), f.Parity...) {
			seen := map[hdfs.DatanodeID]bool{}
			for _, r := range h.Replicas(bid) {
				if seen[r] {
					t.Errorf("%s block %d duplicated on node %d", path, bid, r)
				}
				seen[r] = true
				if !h.Datanode(r).HasBlock(bid) {
					t.Errorf("%s block %d not in node %d's set", path, bid, r)
				}
			}
		}
	}
}

// TestChaosSoak is the tentpole acceptance test: six virtual hours of
// crashes, partitions, corruption, and slow nodes, ending with zero
// recoverable blocks lost and every management job resolved.
func TestChaosSoak(t *testing.T) {
	seeds := []int64{1}
	if os.Getenv("ERMS_SOAK") != "" {
		seeds = []int64{1, 2, 3}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			out := runChaosStorm(t, seed, 6*time.Hour)

			// The storm actually happened.
			if got := out.report.PerKind["crash"]; got < 6 {
				t.Errorf("only %d crashes applied, want ≥6", got)
			}
			if got := out.report.PerKind["partition"]; got < 2 {
				t.Errorf("only %d partitions applied, want ≥2", got)
			}
			if got := out.report.PerKind["corrupt"]; got < 10 {
				t.Errorf("only %d corruptions applied, want ≥10", got)
			}
			// Every partition that happened also healed.
			if out.report.PerKind["heal"] != out.report.PerKind["partition"] {
				t.Errorf("partitions %d != heals %d",
					out.report.PerKind["partition"], out.report.PerKind["heal"])
			}

			// Headline: nothing recoverable was lost.
			if out.lost != 0 {
				t.Errorf("%d blocks unrecoverable after the storm", out.lost)
			}
			if out.under != 0 {
				t.Errorf("%d data blocks still under-replicated at quiescence", out.under)
			}

			// The system fought back and the fight is visible.
			if out.stats.Repairs == 0 {
				t.Error("no repairs ran during a 6h fault storm")
			}
			if out.stats.CorruptFound == 0 {
				t.Error("scrubber/reads found none of the injected corruptions")
			}
			if out.stats.CorruptFixed == 0 {
				t.Error("no corrupted block was restored")
			}

			// Reads mostly survived the storm.
			total := out.readsOK + out.readsBad
			if total == 0 {
				t.Fatal("no reads ran")
			}
			if frac := float64(out.readsBad) / float64(total); frac > 0.05 {
				t.Errorf("%d of %d reads failed (%.1f%% > 5%%)", out.readsBad, total, 100*frac)
			}

			// Condor's books balance: every job resolved or accounted for.
			if out.running != 0 {
				t.Errorf("%d jobs still running at quiescence", out.running)
			}
			if out.sched.Submitted != out.sched.Completed+out.sched.Failed+out.sched.Aborted+out.pending {
				t.Errorf("condor books don't balance: %+v pending=%d", out.sched, out.pending)
			}
		})
	}
}

// TestChaosDeterminism: the entire storm — heartbeat ticks, scrub passes,
// retries, repairs — is a pure function of the seed: two identical runs
// produce byte-identical Condor logs, metrics, and stats.
func TestChaosDeterminism(t *testing.T) {
	a := runChaosStorm(nil, 5, 2*time.Hour)
	b := runChaosStorm(nil, 5, 2*time.Hour)
	if a.condorLog != b.condorLog {
		t.Error("condor user logs differ between identical runs")
	}
	if !reflect.DeepEqual(a.metrics, b.metrics) {
		t.Errorf("metrics differ:\n a=%+v\n b=%+v", a.metrics, b.metrics)
	}
	if !reflect.DeepEqual(a.stats, b.stats) {
		t.Errorf("stats differ:\n a=%+v\n b=%+v", a.stats, b.stats)
	}
	if !reflect.DeepEqual(a.report, b.report) {
		t.Errorf("chaos reports differ:\n a=%+v\n b=%+v", a.report, b.report)
	}
	if a.readsOK != b.readsOK || a.readsBad != b.readsBad {
		t.Errorf("read outcomes differ: %d/%d vs %d/%d",
			a.readsOK, a.readsBad, b.readsOK, b.readsBad)
	}
}

// TestRepairReArmsWhenTargetsReturn pins the repair-failure satellite fix:
// a repair that exhausts its retries because no placement target exists
// must fire again — and succeed — when a node comes back.
func TestRepairReArmsWhenTargetsReturn(t *testing.T) {
	e := sim.NewEngine()
	topo := topology.New(topology.Config{Racks: 1, NodesPerRack: []int{5}})
	h := hdfs.New(e, hdfs.Config{Topology: topo}) // instant-kill semantics
	m := New(h, Config{
		Thresholds:        Thresholds{TauM: 6, Window: 5 * time.Minute, ColdAge: 90 * time.Minute},
		JudgePeriod:       5 * time.Minute,
		RepairRetry:       condor.RetryPolicy{MaxAttempts: 2, Backoff: 10 * time.Second},
		RepairRescanDelay: 20 * time.Second,
	})
	f, err := h.CreateFile("/a", 64*mb, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	bid := f.Blocks[0]
	holders := map[hdfs.DatanodeID]bool{}
	for _, r := range h.Replicas(bid) {
		holders[r] = true
	}
	var spare []hdfs.DatanodeID // the N-1... rather, all possible targets
	for _, d := range h.Datanodes() {
		if !holders[d.ID] {
			spare = append(spare, d.ID)
		}
	}
	if len(spare) != 2 {
		t.Fatalf("expected 2 non-holders, got %d", len(spare))
	}
	victim := h.Replicas(bid)[0]

	// Kill every possible repair target, then one holder: the repair job
	// runs, finds no target, retries, and finally fails.
	e.At(1*time.Second, func() { h.Kill(spare[0]); h.Kill(spare[1]) })
	e.At(2*time.Second, func() { h.Kill(victim) })
	e.RunUntil(2 * time.Minute)
	if got := len(h.Replicas(bid)); got != 2 {
		t.Fatalf("replicas after kills = %d, want 2", got)
	}
	st := m.Stats()
	if st.RepairsRetried == 0 {
		t.Fatal("repair never retried while targets were gone")
	}
	if st.FailedJobs == 0 {
		t.Fatal("repair never exhausted its attempts")
	}

	// One target returns: the up-hook / re-armed rescan must finish the job.
	e.At(e.Now()+time.Second, func() { h.Restart(spare[0]) })
	e.RunUntil(10 * time.Minute)
	m.Stop()

	reps := h.Replicas(bid)
	if len(reps) != 3 {
		t.Fatalf("block not healed after target returned: %v", reps)
	}
	found := false
	for _, r := range reps {
		if r == spare[0] {
			found = true
		}
	}
	if !found {
		t.Fatal("restarted node did not receive the repaired replica")
	}
	if m.Stats().TimeToRepairP50 <= 0 {
		t.Error("time-to-repair not recorded")
	}
	checkClusterConsistency(t, h)
}

// TestCorruptionRepairedThroughCondor: a silently corrupted replica is
// found by the scrubber, quarantined, re-replicated via a Condor repair
// job, and every step is visible in stats and the user log.
func TestCorruptionRepairedThroughCondor(t *testing.T) {
	e := sim.NewEngine()
	topo := topology.New(topology.Config{})
	h := hdfs.New(e, hdfs.Config{Topology: topo})
	m := New(h, Config{
		Thresholds:  Thresholds{TauM: 6, Window: 5 * time.Minute, ColdAge: 90 * time.Minute},
		JudgePeriod: 5 * time.Minute,
		Scrub:       hdfs.ScrubConfig{Period: 10 * time.Second, BlocksPerScan: 200},
	})
	f, err := h.CreateFile("/a", 64*mb, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	bid := f.Blocks[0]
	bad := h.Replicas(bid)[0]
	if err := h.CorruptReplica(bid, bad); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(5 * time.Minute)
	m.Stop()

	st := m.Stats()
	if st.CorruptFound != 1 {
		t.Fatalf("CorruptFound = %d, want 1", st.CorruptFound)
	}
	if st.CorruptFixed != 1 {
		t.Fatalf("CorruptFixed = %d, want 1", st.CorruptFixed)
	}
	if got := len(h.Replicas(bid)); got != 3 {
		t.Fatalf("replicas after repair = %d, want 3", got)
	}
	for _, r := range h.Replicas(bid) {
		if r == bad && h.Datanode(r).CorruptBlock(bid) {
			t.Fatal("corrupt copy still credited")
		}
	}
	// The recovery is in the user log as a normal, replayable repair job.
	sawRepair := false
	for _, ev := range m.Scheduler().Log() {
		if ev.Kind == condor.EventTerminate && strings.HasPrefix(ev.JobName, "repair:") {
			sawRepair = true
		}
	}
	if !sawRepair {
		t.Fatal("no completed repair job in the condor log")
	}
	if h.Metrics().CorruptDetected != 1 {
		t.Fatalf("CorruptDetected = %d", h.Metrics().CorruptDetected)
	}
	checkClusterConsistency(t, h)
}
