package core

import "math"

// Predictor implements the paper's future-work item — "investigate more
// effective solutions to detect and predict the real-time data types" —
// as a per-file double-exponential (Holt) smoother over window access
// counts. The judge can consult it to act one window early on a rising
// trend instead of waiting for a threshold to be crossed.
type Predictor struct {
	alpha, beta float64
	state       map[string]*holtState
}

type holtState struct {
	level, trend float64
	seen         int
}

// NewPredictor builds a predictor with smoothing factors alpha (level)
// and beta (trend); zeros take 0.7 and 0.5 — responsive enough that a
// linear ramp's forecast leads the observations instead of lagging them.
func NewPredictor(alpha, beta float64) *Predictor {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.7
	}
	if beta <= 0 || beta > 1 {
		beta = 0.5
	}
	return &Predictor{alpha: alpha, beta: beta, state: make(map[string]*holtState)}
}

// Observe feeds one window's access count for a path.
func (p *Predictor) Observe(path string, count float64) {
	st := p.state[path]
	if st == nil {
		p.state[path] = &holtState{level: count, seen: 1}
		return
	}
	prevLevel := st.level
	st.level = p.alpha*count + (1-p.alpha)*(st.level+st.trend)
	st.trend = p.beta*(st.level-prevLevel) + (1-p.beta)*st.trend
	st.seen++
}

// Predict returns the forecast access count for the next window and
// whether the predictor has seen enough history (two observations) to
// extrapolate. Forecasts never go negative.
func (p *Predictor) Predict(path string) (float64, bool) {
	st := p.state[path]
	if st == nil || st.seen < 2 {
		return 0, false
	}
	f := st.level + st.trend
	if f < 0 {
		f = 0
	}
	return f, true
}

// Trend returns the current smoothed per-window growth rate for a path
// (0 when unknown).
func (p *Predictor) Trend(path string) float64 {
	if st := p.state[path]; st != nil {
		return st.trend
	}
	return 0
}

// Forget drops a path's history (deleted files).
func (p *Predictor) Forget(path string) { delete(p.state, path) }

// Rename migrates a path's history (renamed files keep their trend).
func (p *Predictor) Rename(src, dst string) {
	if st, ok := p.state[src]; ok {
		p.state[dst] = st
		delete(p.state, src)
	}
}

// Len returns the number of tracked paths.
func (p *Predictor) Len() int { return len(p.state) }

// predictHot applies the hot rule to the forecast: a file is
// predictively hot when the next window's expected demand already
// exceeds the threshold and the trend is genuinely rising (guarding
// against acting on stale high levels).
func (p *Predictor) predictHot(path string, r, tauM float64) (float64, bool) {
	f, ok := p.Predict(path)
	if !ok || r <= 0 {
		return 0, false
	}
	if f/r > tauM && p.Trend(path) > 0 {
		return f, true
	}
	return 0, false
}

// clampForecast keeps a forecast within sane bounds relative to the last
// observation so one noisy spike cannot demand absurd replication.
func clampForecast(forecast, lastObserved float64) float64 {
	limit := 2*lastObserved + 10
	return math.Min(forecast, limit)
}
