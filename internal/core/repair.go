package core

import (
	"fmt"
	"sort"

	"erms/internal/condor"
	"erms/internal/hdfs"
	"erms/internal/topology"
)

// The repair pipeline: damaged blocks are classified into HDFS-style
// priority tiers, admitted under a cluster-wide stream cap in (tier,
// BlockID) order, spread under a per-datanode inbound-copy cap, and —
// when a bandwidth budget is configured — paced by a token bucket so
// recovery traffic leaves measured headroom for foreground reads during a
// mass failure. While the namenode is in safe mode the whole sweep defers:
// a transient partition then heals for free instead of triggering a
// repair storm, and the safe-mode exit callback re-arms the sweep
// deterministically.

// Repair priority tiers, highest first. The numeric order is the admission
// order.
const (
	// TierLastReplica: one live replica left (or the block is lost and only
	// erasure reconstruction can bring it back) — any further failure is
	// data loss.
	TierLastReplica = iota
	// TierBelowHalf: fewer than half the target replicas survive.
	TierBelowHalf
	// TierBelowTarget: degraded but comfortably redundant.
	TierBelowTarget
	// TierDecommissionOnly: every live replica sits on a decommissioning
	// node. Nothing is failing — the drain is graceful — so this tier
	// yields to real damage.
	TierDecommissionOnly
	numRepairTiers
)

// RepairTierNames names the repair tiers in admission-priority order;
// indexes match RepairQueueDepths and the Tier* constants. Shared by
// every surface that renders queue depths (ermsctl status, the /v1/status
// endpoint) so the labels cannot drift.
func RepairTierNames() [numRepairTiers]string {
	return [numRepairTiers]string{"last-replica", "below-half", "below-target", "decomm-only"}
}

// RepairConfig throttles the repair pipeline. The zero value gets
// defaults; -1 disables the corresponding cap.
type RepairConfig struct {
	// MaxStreams caps concurrently running block-repair jobs cluster-wide
	// (HDFS dfs.namenode.replication.max-streams writ large). Candidates
	// beyond the cap stay queued and are counted repairs_throttled.
	// Default: 2× the number of datanodes (matching the two Condor slots
	// each machine advertises); -1 = unlimited.
	MaxStreams int
	// MaxStreamsPerNode caps concurrent inbound repair copies per target
	// datanode; capped nodes are excluded from repair placement for the
	// duration. Default 2; -1 = unlimited.
	MaxStreamsPerNode int
	// BandwidthMBps, when positive, gives repair copies a token-bucket
	// bandwidth budget: copy starts are paced so admitted bytes accrue at
	// this rate, and each copy's flow is individually capped to it.
	// 0 = unlimited.
	BandwidthMBps float64
}

func (r *RepairConfig) applyDefaults(datanodes int) {
	if r.MaxStreams == 0 {
		r.MaxStreams = 2 * datanodes
	}
	if r.MaxStreamsPerNode == 0 {
		r.MaxStreamsPerNode = 2
	}
}

// repairable reports whether the pipeline can act on the damaged block at
// all: parity blocks only matter once lost, and a lost block without
// erasure protection has nothing to rebuild from.
func (m *Manager) repairable(bid hdfs.BlockID) bool {
	b := m.cluster.Block(bid)
	if b == nil {
		return false
	}
	lost := len(m.cluster.Replicas(bid)) == 0
	if b.Parity && !lost {
		return false
	}
	f := m.cluster.File(b.File)
	encoded := f != nil && f.Encoded
	return !lost || encoded
}

// repairTier classifies a damaged block into its priority tier.
func (m *Manager) repairTier(bid hdfs.BlockID) int {
	reps := m.cluster.Replicas(bid)
	if len(reps) <= 1 {
		return TierLastReplica
	}
	allDecom := true
	for _, dn := range reps {
		if m.cluster.Datanode(dn).State != hdfs.StateDecommissioning {
			allDecom = false
			break
		}
	}
	if allDecom {
		return TierDecommissionOnly
	}
	b := m.cluster.Block(bid)
	target := 1
	if f := m.cluster.File(b.File); f != nil && !f.Encoded {
		target = f.TargetRepl
	}
	if len(reps)*2 < target {
		return TierBelowHalf
	}
	return TierBelowTarget
}

// scheduleRepairs is the damage sweep: it classifies every repairable
// under-replicated block into a tier and admits repair jobs in (tier,
// BlockID) order until the cluster-wide stream cap fills. In safe mode the
// whole sweep defers (counted repairs_deferred) and re-arms on exit;
// candidates past the cap count repairs_throttled and re-arm on job
// completion plus a delayed rescan.
func (m *Manager) scheduleRepairs() {
	if m.cluster.InSafeMode() {
		deferred := 0
		for _, bid := range m.cluster.UnderReplicated() {
			if !m.repairing[bid] && m.repairable(bid) {
				deferred++
			}
		}
		if deferred > 0 {
			m.ctr.repairsDeferred.Add(float64(deferred))
		}
		return
	}
	type cand struct {
		tier int
		bid  hdfs.BlockID
	}
	var cands []cand
	for _, bid := range m.cluster.UnderReplicated() {
		if m.repairing[bid] || !m.repairable(bid) {
			continue
		}
		cands = append(cands, cand{m.repairTier(bid), bid})
	}
	// UnderReplicated is ascending by BlockID (a documented contract), so a
	// stable sort by tier yields the (tier, BlockID) admission order.
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].tier < cands[j].tier })
	throttled := 0
	for _, cd := range cands {
		if m.cfg.Repair.MaxStreams > 0 && len(m.repairing) >= m.cfg.Repair.MaxStreams {
			throttled++
			continue
		}
		m.submitRepair(cd.bid, cd.tier)
	}
	if throttled > 0 {
		m.ctr.repairsThrottled.Add(float64(throttled))
		m.armRepairRescan()
	}
}

// submitRepair builds and submits the Condor recovery job for one damaged
// block.
func (m *Manager) submitRepair(bid hdfs.BlockID, tier int) {
	b := m.cluster.Block(bid)
	lost := len(m.cluster.Replicas(bid)) == 0
	m.repairing[bid] = true
	m.ctr.repairs.Inc()
	if _, ok := m.repairStart[bid]; !ok {
		m.repairStart[bid] = m.cluster.Clock().Now()
	}
	var job *condor.Job
	job = &condor.Job{
		Name:  fmt.Sprintf("repair:t%d:%s:block%d", tier, b.File, bid),
		Class: condor.ClassImmediate,
		Retry: m.cfg.RepairRetry,
		Run: func(_ *condor.Machine, done func(error)) {
			if job.Attempt > 1 {
				m.ctr.repairsRetried.Inc()
			}
			// Re-read the damage each attempt: a retry may find the block
			// already healed (restarted node) or newly lost.
			if lost || len(m.cluster.Replicas(bid)) == 0 {
				m.cluster.ReconstructBlock(bid, done)
				return
			}
			// Top the block back up to its target in one job, skipping
			// nodes already at their inbound repair-copy cap.
			f2 := m.cluster.File(b.File)
			need := 1
			if f2 != nil && !f2.Encoded {
				need = f2.TargetRepl - len(m.cluster.Replicas(bid))
			}
			if need <= 0 {
				done(nil)
				return
			}
			targets := m.cluster.PlacementPolicy().ChooseTargets(m.cluster, b, need, -1, m.cappedTargets())
			if len(targets) == 0 {
				done(fmt.Errorf("erms: no repair target for block %d", bid))
				return
			}
			remaining := len(targets)
			var firstErr error
			for _, t := range targets {
				m.startRepairCopy(bid, t, func(err error) {
					if err != nil && firstErr == nil {
						firstErr = err
					}
					remaining--
					if remaining == 0 {
						done(firstErr)
					}
				})
			}
		},
		// Notify (not done) observes terminal resolution, so timeout
		// reclaims are bookkept too and repairing[bid] stays held
		// across retry backoffs (no duplicate repair submissions).
		Notify: func(j *condor.Job) {
			delete(m.repairing, bid)
			if j.State == condor.StateCompleted {
				if start, ok := m.repairStart[bid]; ok {
					m.ttr.Add((m.cluster.Clock().Now() - start).Seconds())
					delete(m.repairStart, bid)
				}
				if m.corruptPending[bid] {
					m.ctr.corruptFixed.Inc()
					delete(m.corruptPending, bid)
				}
			} else {
				m.ctr.failedJobs.Inc()
				delete(m.repairStart, bid)
				// The block is still damaged; re-arm the sweep so a later
				// pass retries fresh once the cluster may have healed.
				m.armRepairRescan()
			}
			// A slot opened either way: admit throttled candidates now
			// rather than waiting for the delayed rescan.
			m.scheduleRepairs()
		},
	}
	m.sched.Submit(job)
}

// startRepairCopy launches one repair copy toward t, holding the per-node
// stream accounting for its duration and routing it through the bandwidth
// budget when one is configured.
func (m *Manager) startRepairCopy(bid hdfs.BlockID, t hdfs.DatanodeID, done func(error)) {
	m.nodeStreams[t]++
	m.streams++
	if lim := m.cfg.Repair.MaxStreamsPerNode; lim > 0 && m.nodeStreams[t] > lim {
		m.capViolations++ // placement exclusion should make this unreachable
	}
	finish := func(err error) {
		m.streams--
		m.nodeStreams[t]--
		if m.nodeStreams[t] <= 0 {
			delete(m.nodeStreams, t)
		}
		done(err)
	}
	rate := m.cfg.Repair.BandwidthMBps * topology.MB
	switch {
	case m.bucket != nil:
		cost := 0.0
		if b := m.cluster.Block(bid); b != nil {
			cost = b.Size
		}
		m.bucket.Take(cost, func() {
			m.cluster.AddReplicaLimited(bid, t, rate, finish)
		})
	case rate > 0:
		m.cluster.AddReplicaLimited(bid, t, rate, finish)
	default:
		m.cluster.AddReplica(bid, t, finish)
	}
}

// cappedTargets returns the datanodes currently at their inbound
// repair-copy cap, for exclusion from repair placement (nil when the cap
// is off or nobody is capped).
func (m *Manager) cappedTargets() map[hdfs.DatanodeID]bool {
	lim := m.cfg.Repair.MaxStreamsPerNode
	if lim <= 0 {
		return nil
	}
	var out map[hdfs.DatanodeID]bool
	for id, n := range m.nodeStreams {
		if n >= lim {
			if out == nil {
				out = map[hdfs.DatanodeID]bool{}
			}
			out[id] = true
		}
	}
	return out
}

// RepairCaps returns the effective repair throttling configuration.
func (m *Manager) RepairCaps() RepairConfig { return m.cfg.Repair }

// ActiveRepairJobs returns the number of block-repair jobs currently held
// (submitted and not yet terminally resolved) — the quantity MaxStreams
// caps.
func (m *Manager) ActiveRepairJobs() int { return len(m.repairing) }

// ActiveRepairStreams returns repair copies currently in flight.
func (m *Manager) ActiveRepairStreams() int { return m.streams }

// NodeRepairStreams returns a copy of the per-datanode in-flight repair
// copy counts.
func (m *Manager) NodeRepairStreams() map[hdfs.DatanodeID]int {
	out := make(map[hdfs.DatanodeID]int, len(m.nodeStreams))
	for id, n := range m.nodeStreams {
		out[id] = n
	}
	return out
}

// CapViolations returns how many times a repair copy was started against a
// node already at its per-node cap. It must stay zero; the repair-cap
// invariant oracle asserts that.
func (m *Manager) CapViolations() int { return m.capViolations }

// RepairQueueDepths returns the current per-tier depth of the repair
// queue: repairable damaged blocks not yet admitted, classified by tier.
// Index by the Tier* constants.
func (m *Manager) RepairQueueDepths() [numRepairTiers]int {
	var out [numRepairTiers]int
	for _, bid := range m.cluster.UnderReplicated() {
		if m.repairing[bid] || !m.repairable(bid) {
			continue
		}
		out[m.repairTier(bid)]++
	}
	return out
}
