package core

import (
	"testing"
	"time"

	"erms/internal/hdfs"
	"erms/internal/sim"
	"erms/internal/topology"
	"erms/internal/workload"
)

// TestSoakSixHoursWithFailures runs a full ERMS deployment against six
// virtual hours of heavy-tailed workload while killing and restarting
// datanodes every 40 minutes, then checks the system's global invariants:
// nothing under-replicated that could have been repaired, metadata
// consistent, management jobs accounted for, and the standby pool back
// asleep.
func TestSoakSixHoursWithFailures(t *testing.T) {
	e := sim.NewEngine()
	topo := topology.New(topology.Config{})
	var pool []hdfs.DatanodeID
	for id := 10; id < 18; id++ {
		pool = append(pool, hdfs.DatanodeID(id))
	}
	h := hdfs.New(e, hdfs.Config{Topology: topo, StandbyNodes: pool})
	th := Thresholds{
		TauM:    6,
		Window:  5 * time.Minute,
		ColdAge: 90 * time.Minute,
	}
	m := New(h, Config{Thresholds: th, JudgePeriod: 5 * time.Minute})

	trace := workload.Synthesize(workload.Config{
		Seed:             99,
		Duration:         4 * time.Hour, // quiet final 2h lets cold data encode
		NumFiles:         20,
		MeanInterarrival: 10 * time.Second,
		MaxFileSize:      512 * mb,
	})
	workload.Preload(e, h, trace)
	completed, failed := 0, 0
	workload.ReplayReads(e, h, trace, func(r *hdfs.ReadResult) {
		if r.Err != nil {
			failed++
		} else {
			completed++
		}
	})

	// Failure injection: every 40 minutes kill an always-active node and
	// restart the previous victim, so at most one node is down at a time.
	var lastVictim hdfs.DatanodeID = -1
	for i := 0; i < 8; i++ {
		at := time.Duration(40*(i+1)) * time.Minute
		victim := hdfs.DatanodeID(i % 10)
		e.At(at, func() {
			if lastVictim >= 0 {
				h.Restart(lastVictim)
			}
			h.Kill(victim)
			lastVictim = victim
		})
	}

	e.RunUntil(6 * time.Hour)
	m.Stop()

	total := completed + failed
	if total == 0 {
		t.Fatal("no reads ran")
	}
	// With 3x replication, one node down at a time, and repair jobs, the
	// overwhelming majority of reads must succeed.
	if float64(failed)/float64(total) > 0.02 {
		t.Fatalf("%d of %d reads failed (> 2%%)", failed, total)
	}

	// Every surviving block is repairable and repaired: run the pending
	// sweeps to quiescence and verify.
	e.RunFor(30 * time.Minute)
	for _, bid := range h.UnderReplicated() {
		b := h.Block(bid)
		if len(h.Replicas(bid)) == 0 && !h.File(b.File).Encoded {
			continue // plain block lost beyond repair is impossible here: fail
		}
		t.Errorf("block %d of %s still under-replicated at quiescence", bid, b.File)
	}

	// Metadata invariants across the whole namespace.
	for _, path := range h.FilePaths() {
		f := h.File(path)
		for _, bid := range f.Blocks {
			reps := h.Replicas(bid)
			if len(reps) == 0 {
				t.Errorf("%s block %d lost", path, bid)
			}
			seen := map[hdfs.DatanodeID]bool{}
			for _, r := range reps {
				if seen[r] {
					t.Errorf("%s block %d duplicated on node %d", path, bid, r)
				}
				seen[r] = true
				if !h.Datanode(r).HasBlock(bid) {
					t.Errorf("%s block %d not in node %d's set", path, bid, r)
				}
			}
		}
	}

	st := m.Stats()
	if st.Decisions == 0 || st.Increases == 0 {
		t.Fatalf("ERMS never acted: %+v", st)
	}
	if st.Encodes == 0 {
		t.Errorf("no cold data encoded over six hours: %+v", st)
	}
	// The scheduler's books must balance: everything submitted finished,
	// failed, or was aborted (nothing stuck pending/running at quiescence).
	cs := m.Scheduler().Stats()
	if m.Scheduler().Running() != 0 {
		t.Errorf("%d management jobs still running", m.Scheduler().Running())
	}
	if cs.Submitted != cs.Completed+cs.Failed+cs.Aborted+m.Scheduler().Pending() {
		t.Errorf("condor books don't balance: %+v pending=%d", cs, m.Scheduler().Pending())
	}
	// Quiet for hours: any drained pool node is powered down again.
	for id := range map[hdfs.DatanodeID]bool{10: true, 11: true} {
		d := h.Datanode(id)
		if m.InStandbyPool(id) && d.NumBlocks() == 0 && d.State == hdfs.StateActive {
			t.Errorf("drained pool node %s left powered on", d.Name)
		}
	}
}
