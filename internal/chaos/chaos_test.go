package chaos

import (
	"strings"
	"testing"
	"time"

	"erms/internal/hdfs"
	"erms/internal/sim"
	"erms/internal/topology"
)

const mb = 1e6

func newCluster(t *testing.T) (*sim.Engine, *hdfs.Cluster) {
	t.Helper()
	e := sim.NewEngine()
	c := hdfs.New(e, hdfs.Config{Topology: topology.New(topology.Config{})})
	return e, c
}

// TestPlanAppliesScriptedFaults: a hand-written plan fires each fault at
// its scheduled time and the report tallies per kind.
func TestPlanAppliesScriptedFaults(t *testing.T) {
	e, c := newCluster(t)
	f, _ := c.CreateFile("/a", 128*mb, 3, 0)
	victim := c.Replicas(f.Blocks[0])[0]
	p := &Plan{Events: []Event{
		{At: 10 * time.Second, Kind: Crash, Node: victim},
		{At: 30 * time.Second, Kind: Restart, Node: victim},
		{At: 40 * time.Second, Kind: PartitionRack, Rack: 1},
		{At: 50 * time.Second, Kind: HealRack, Rack: 1},
		{At: 60 * time.Second, Kind: SlowNode, Node: victim, Factor: 0.25},
		{At: 70 * time.Second, Kind: RestoreNode, Node: victim},
		{At: 80 * time.Second, Kind: CorruptReplica, BlockOrdinal: 0, ReplicaOrdinal: 0},
	}}
	rep := p.Schedule(e, c)

	e.RunUntil(20 * time.Second)
	if got := c.Datanode(victim).State; got != hdfs.StateDown {
		t.Fatalf("node after crash = %s", got)
	}
	e.RunUntil(35 * time.Second)
	if got := c.Datanode(victim).State; got != hdfs.StateActive {
		t.Fatalf("node after restart = %s", got)
	}
	e.RunUntil(45 * time.Second)
	if !c.RackPartitioned(1) {
		t.Fatal("rack not partitioned")
	}
	e.RunUntil(2 * time.Minute)
	if c.RackPartitioned(1) {
		t.Fatal("rack not healed")
	}
	if rep.Applied != 7 || rep.Skipped != 0 {
		t.Fatalf("report = %+v", rep)
	}
	for _, k := range []string{"crash", "restart", "partition", "heal", "slow", "restore", "corrupt"} {
		if rep.PerKind[k] != 1 {
			t.Fatalf("PerKind[%s] = %d", k, rep.PerKind[k])
		}
	}
}

// TestPlanSkipsInvalidTargets: events with no valid target at fire time
// are counted as skipped, not applied and not fatal.
func TestPlanSkipsInvalidTargets(t *testing.T) {
	e, c := newCluster(t) // empty namespace
	p := &Plan{Events: []Event{
		{At: time.Second, Kind: Restart, Node: 0},      // node is up
		{At: time.Second, Kind: HealRack, Rack: 0},     // not partitioned
		{At: time.Second, Kind: CorruptReplica},        // no blocks exist
		{At: time.Second, Kind: SlowNode, Node: 99999}, // no such node
		{At: 2 * time.Second, Kind: Crash, Node: 3},
		{At: 3 * time.Second, Kind: Crash, Node: 3}, // already down
		{At: 4 * time.Second, Kind: Restart, Node: 3},
	}}
	rep := p.Schedule(e, c)
	e.RunUntil(10 * time.Second)
	if rep.Applied != 2 || rep.Skipped != 5 {
		t.Fatalf("report = %+v", rep)
	}
}

// TestSlowNodeComposesFromNominal: repeated SlowNode events replace the
// factor rather than compounding, and RestoreNode returns to nominal.
func TestSlowNodeComposesFromNominal(t *testing.T) {
	e, c := newCluster(t)
	node := c.Topology().Node(topology.NodeID(2))
	nominal := c.Fabric().LinkFactor(node.Disk)
	if nominal != 1 {
		t.Fatalf("nominal factor = %v", nominal)
	}
	p := &Plan{Events: []Event{
		{At: time.Second, Kind: SlowNode, Node: 2, Factor: 0.5},
		{At: 2 * time.Second, Kind: SlowNode, Node: 2, Factor: 0.25},
		{At: 3 * time.Second, Kind: RestoreNode, Node: 2},
	}}
	p.Schedule(e, c)
	e.RunUntil(2500 * time.Millisecond)
	if got := c.Fabric().LinkFactor(node.Disk); got != 0.25 {
		t.Fatalf("factor after second slow = %v (must not compound)", got)
	}
	e.RunUntil(5 * time.Second)
	if got := c.Fabric().LinkFactor(node.Disk); got != 1 {
		t.Fatalf("factor after restore = %v", got)
	}
}

// TestStormDeterminism: equal configs yield byte-identical plans; a
// different seed yields a different plan.
func TestStormDeterminism(t *testing.T) {
	cfg := StormConfig{
		Seed:        7,
		Duration:    6 * time.Hour,
		Nodes:       []hdfs.DatanodeID{0, 1, 2, 3, 4, 5},
		Racks:       []int{0, 1, 2},
		Crashes:     8,
		Partitions:  2,
		Corruptions: 12,
		SlowNodes:   3,
	}
	a := Storm(cfg).String()
	b := Storm(cfg).String()
	if a != b {
		t.Fatal("same seed produced different plans")
	}
	cfg.Seed = 8
	if Storm(cfg).String() == a {
		t.Fatal("different seed produced identical plan")
	}
}

// TestStormShape: the generated plan has the requested pair structure,
// stays inside the window, is time-sorted, and honours MaxConcurrentDown.
func TestStormShape(t *testing.T) {
	cfg := StormConfig{
		Seed:              3,
		Duration:          2 * time.Hour,
		Nodes:             []hdfs.DatanodeID{0, 1, 2, 3, 4, 5, 6, 7},
		Racks:             []int{0, 1},
		Crashes:           6,
		Partitions:        2,
		Corruptions:       10,
		SlowNodes:         2,
		MaxConcurrentDown: 2,
	}
	p := Storm(cfg)
	counts := map[Kind]int{}
	last := time.Duration(-1)
	for _, ev := range p.Events {
		counts[ev.Kind]++
		if ev.At < last {
			t.Fatal("plan not sorted by time")
		}
		last = ev.At
	}
	if counts[Crash] != 6 || counts[Restart] != 6 {
		t.Fatalf("crash/restart = %d/%d", counts[Crash], counts[Restart])
	}
	if counts[PartitionRack] != 2 || counts[HealRack] != 2 {
		t.Fatalf("partition/heal = %d/%d", counts[PartitionRack], counts[HealRack])
	}
	if counts[CorruptReplica] != 10 {
		t.Fatalf("corruptions = %d", counts[CorruptReplica])
	}
	if counts[SlowNode] != 2 || counts[RestoreNode] != 2 {
		t.Fatalf("slow/restore = %d/%d", counts[SlowNode], counts[RestoreNode])
	}

	// Replay the crash/restart pairing per node to bound concurrent downs.
	down := 0
	maxDown := 0
	for _, ev := range p.Events {
		switch ev.Kind {
		case Crash:
			down++
			if down > maxDown {
				maxDown = down
			}
		case Restart:
			down--
		}
	}
	if maxDown > cfg.MaxConcurrentDown {
		t.Fatalf("max concurrent down = %d, bound %d", maxDown, cfg.MaxConcurrentDown)
	}
	if down != 0 {
		t.Fatalf("storm leaves %d nodes permanently down", down)
	}
}

// TestPlanString: the rendering is line-per-event (used for golden
// comparisons in determinism tests).
func TestPlanString(t *testing.T) {
	p := &Plan{Events: []Event{
		{At: 90 * time.Second, Kind: Crash, Node: 4},
		{At: 2 * time.Minute, Kind: CorruptReplica, BlockOrdinal: 17, ReplicaOrdinal: 2},
	}}
	s := p.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("rendered %d lines: %q", len(lines), s)
	}
	if !strings.Contains(lines[0], "crash") || !strings.Contains(lines[1], "ord=17/2") {
		t.Fatalf("unexpected rendering: %q", s)
	}
}
