package chaos

import (
	"fmt"
	"testing"
	"time"

	"erms/internal/auditlog"
	"erms/internal/hdfs"
	"erms/internal/sim"
	"erms/internal/topology"
)

// TestFailoverMidStorm: namenode crashes land in the middle of a datanode
// fault storm with reads in flight; every standby rebuilt from the rolling
// checkpoint plus journal tail must match the primary's durable state
// exactly and lose no recoverable block.
func TestFailoverMidStorm(t *testing.T) {
	e := sim.NewEngine()
	c := hdfs.New(e, hdfs.Config{
		Topology: topology.New(topology.Config{}),
		Heartbeat: hdfs.HeartbeatConfig{
			Enabled:     true,
			DeadTimeout: 2 * time.Minute,
		},
	})
	c.SetJournal(auditlog.NewJournal())
	for i := 0; i < 6; i++ {
		if _, err := c.CreateFile(fmt.Sprintf("/d/f%d", i), 192*mb, 3, topology.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Background reads keep transient work in flight across every crash.
	sim.NewTicker(e, 20*time.Second, func(now time.Duration) {
		c.ReadFile(topology.NodeID(int(now/time.Second)%6), fmt.Sprintf("/d/f%d", int(now/time.Minute)%6), nil)
	})

	fo, err := NewFailover(FailoverConfig{
		Engine:          e,
		Cluster:         c,
		Interval:        3 * time.Minute,
		TruncateJournal: true,
		NewStandby: func(e2 *sim.Engine) *hdfs.Cluster {
			// Same durable config; heartbeat detector off, as a standby
			// would run it (excluded from the config digest).
			return hdfs.New(e2, hdfs.Config{Topology: topology.New(topology.Config{})})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fo.Stop()

	plan := Storm(StormConfig{
		Seed:            11,
		Duration:        30 * time.Minute,
		Nodes:           []hdfs.DatanodeID{0, 1, 2, 3, 4, 5, 6, 7, 8},
		Racks:           []int{1, 2},
		Crashes:         3,
		Downtime:        4 * time.Minute,
		Partitions:      1,
		Corruptions:     4,
		NamenodeCrashes: 3,
	})
	plan.Failover = fo
	rep := plan.Schedule(e, c)
	e.RunUntil(35 * time.Minute)

	if rep.PerKind["namenode-crash"] != 3 {
		t.Fatalf("namenode crashes applied = %d, report %+v", rep.PerKind["namenode-crash"], rep)
	}
	results := fo.Results()
	if len(results) != 3 {
		t.Fatalf("failover results = %d", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("failover %d at %s: %v", i, r.At, r.Err)
		}
		if !r.DigestMatch {
			t.Errorf("failover %d at %s: standby digest != primary (tail %d entries, ckpt age %s)",
				i, r.At, r.TailEntries, r.CheckpointAge)
		}
		if !r.ConsistencyOK {
			t.Errorf("failover %d at %s: standby fails consistency", i, r.At)
		}
		if r.RecoverableLost != 0 {
			t.Errorf("failover %d at %s: lost %d recoverable blocks", i, r.At, r.RecoverableLost)
		}
		if r.CheckpointBytes == 0 {
			t.Errorf("failover %d: empty checkpoint", i)
		}
		if r.CheckpointAge < 0 || r.CheckpointAge > 3*time.Minute {
			t.Errorf("failover %d: checkpoint age %s outside the snapshot interval", i, r.CheckpointAge)
		}
	}
	if errs := c.ConsistencyErrors(); errs != nil {
		t.Fatalf("primary inconsistent after storm: %v", errs)
	}
}

// TestNamenodeCrashNeedsHarness: a plan without a Failover harness skips
// namenode crashes instead of failing.
func TestNamenodeCrashNeedsHarness(t *testing.T) {
	e, c := newCluster(t)
	p := &Plan{Events: []Event{{At: time.Second, Kind: NamenodeCrash}}}
	rep := p.Schedule(e, c)
	e.RunUntil(2 * time.Second)
	if rep.Applied != 0 || rep.Skipped != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

// TestFailoverGuards: the harness refuses to start without a journal, and
// an explicit Snapshot tightens the next crash's tail.
func TestFailoverGuards(t *testing.T) {
	e, c := newCluster(t)
	mk := func(e2 *sim.Engine) *hdfs.Cluster {
		return hdfs.New(e2, hdfs.Config{Topology: topology.New(topology.Config{})})
	}
	if _, err := NewFailover(FailoverConfig{Engine: e, Cluster: c, NewStandby: mk}); err == nil {
		t.Fatal("harness accepted a journal-less cluster")
	}
	if _, err := NewFailover(FailoverConfig{Cluster: c}); err == nil {
		t.Fatal("harness accepted a nil engine/factory")
	}

	c.SetJournal(auditlog.NewJournal())
	if _, err := c.CreateFile("/a", 128*mb, 3, 0); err != nil {
		t.Fatal(err)
	}
	fo, err := NewFailover(FailoverConfig{Engine: e, Cluster: c, NewStandby: mk})
	if err != nil {
		t.Fatal(err)
	}
	defer fo.Stop()
	if _, err := c.CreateFile("/b", 128*mb, 3, 1); err != nil {
		t.Fatal(err)
	}
	e.RunFor(30 * time.Second)
	before := fo.Crash()
	if before.Err != nil || !before.DigestMatch || before.TailEntries == 0 {
		t.Fatalf("crash before manual snapshot: %+v", before)
	}
	if err := fo.Snapshot(); err != nil {
		t.Fatal(err)
	}
	after := fo.Crash()
	if after.Err != nil || !after.DigestMatch {
		t.Fatalf("crash after manual snapshot: %+v", after)
	}
	if after.TailEntries != 0 {
		t.Fatalf("tail after fresh snapshot = %d entries", after.TailEntries)
	}
}
