package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"erms/internal/hdfs"
	"erms/internal/sim"
)

// FailoverConfig wires the namenode-crash fault into a plan. The harness
// keeps a rolling checkpoint of the primary and, when a NamenodeCrash
// event fires, commissions a standby from that checkpoint plus the
// journal tail and verifies it against the still-live primary — the
// durable ground truth at the instant of the crash.
type FailoverConfig struct {
	// Engine is the primary's simulation engine.
	Engine *sim.Engine
	// Cluster is the primary namenode; it must have a journal attached
	// (hdfs.Cluster.SetJournal) before any namespace mutation.
	Cluster *hdfs.Cluster
	// NewStandby builds an empty cluster on the given engine with the same
	// durable configuration as the primary — the checkpoint's config
	// digest enforces the parts that matter. Heartbeat tuning may differ
	// (standbys typically run with the detector off).
	NewStandby func(*sim.Engine) *hdfs.Cluster
	// Interval between background checkpoints (default 5 minutes). The
	// first checkpoint is taken when the harness is created.
	Interval time.Duration
	// TruncateJournal discards journal entries the latest checkpoint makes
	// redundant, bounding memory across a long storm.
	TruncateJournal bool
}

// FailoverResult records one namenode crash and the standby that replaced
// it. Everything except RestoreWall is deterministic.
type FailoverResult struct {
	// At is the virtual time the namenode crashed.
	At time.Duration
	// CheckpointAge is how stale the rolling checkpoint was at the crash.
	CheckpointAge time.Duration
	// CheckpointBytes is the size of the restored checkpoint.
	CheckpointBytes int
	// TailEntries is the journal-tail length replayed on top of it.
	TailEntries int
	// RestoreWall is the real time spent restoring and replaying.
	RestoreWall time.Duration
	// DigestMatch reports whether the standby's StateDigest equals the
	// primary's at the crash instant.
	DigestMatch bool
	// ConsistencyOK reports whether the standby passes ConsistencyErrors.
	ConsistencyOK bool
	// RecoverableLost counts blocks that had at least one live replica on
	// the primary but are unknown (or replica-less) on the standby. Zero
	// means the failover lost nothing a real client could still read.
	RecoverableLost int
	// Zombie marks a CrashZombie drill: the crashed primary lingered past
	// the standby's promotion and its late mutations were probed against
	// the journal-epoch fence.
	Zombie bool
	// FencedRejected counts the zombie's probe mutations bounced by the
	// fence; FencedApplied counts any that slipped through (must be zero —
	// the epoch invariant oracle asserts it).
	FencedRejected int
	FencedApplied  int
	// Err is set when the standby could not be built at all.
	Err error
}

// Failover is the namenode-crash harness; attach it to a Plan via
// Plan.Failover so NamenodeCrash events have a target.
type Failover struct {
	cfg     FailoverConfig
	ticker  *sim.Ticker
	ckpt    []byte
	ckptAt  time.Duration
	ckptSeq uint64
	results []FailoverResult
}

// NewFailover builds the harness, takes the initial checkpoint, and starts
// the background checkpoint ticker.
func NewFailover(cfg FailoverConfig) (*Failover, error) {
	if cfg.Engine == nil || cfg.Cluster == nil || cfg.NewStandby == nil {
		return nil, fmt.Errorf("chaos: failover needs Engine, Cluster, and NewStandby")
	}
	if cfg.Cluster.Journal() == nil {
		return nil, fmt.Errorf("chaos: failover needs a journaled cluster (SetJournal before mutations)")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Minute
	}
	f := &Failover{cfg: cfg}
	if err := f.Snapshot(); err != nil {
		return nil, err
	}
	f.ticker = sim.NewTicker(cfg.Engine, cfg.Interval, func(time.Duration) {
		// A background snapshot that fails leaves the previous one in
		// place; the next Crash simply replays a longer tail.
		_ = f.Snapshot()
	})
	return f, nil
}

// Snapshot checkpoints the primary now and records the journal position
// the tail must resume from. Called automatically on the interval; call it
// directly to model an operator-triggered checkpoint.
func (f *Failover) Snapshot() error {
	var buf bytes.Buffer
	if err := f.cfg.Cluster.WriteCheckpoint(&buf); err != nil {
		return err
	}
	f.ckpt = buf.Bytes()
	f.ckptAt = f.cfg.Engine.Now()
	f.ckptSeq = f.cfg.Cluster.Journal().NextSeq()
	if f.cfg.TruncateJournal {
		f.cfg.Cluster.Journal().TruncateTo(f.ckptSeq)
	}
	return nil
}

// Stop cancels the background checkpoint ticker.
func (f *Failover) Stop() {
	if f.ticker != nil {
		f.ticker.Stop()
	}
}

// Results returns one entry per namenode crash, in order.
func (f *Failover) Results() []FailoverResult { return f.results }

// Crash fails the namenode over: a fresh standby cluster restores the
// rolling checkpoint, replays the journal tail, and is verified against
// the primary's durable state at this instant. The standby is then
// discarded and the simulation continues on the primary — the harness
// verifies recoverability in place rather than swapping namenodes
// mid-run, so one storm can absorb several crashes.
func (f *Failover) Crash() FailoverResult {
	now := f.cfg.Engine.Now()
	res := FailoverResult{
		At:              now,
		CheckpointAge:   now - f.ckptAt,
		CheckpointBytes: len(f.ckpt),
	}
	tail := f.cfg.Cluster.Journal().Tail(f.ckptSeq)
	if tail == nil {
		res.Err = fmt.Errorf("chaos: journal tail from seq %d unavailable", f.ckptSeq)
		f.results = append(f.results, res)
		return res
	}
	res.TailEntries = len(tail)

	start := time.Now()
	engine := sim.NewEngine()
	standby := f.cfg.NewStandby(engine)
	if err := standby.RestoreCheckpoint(bytes.NewReader(f.ckpt)); err != nil {
		res.Err = fmt.Errorf("chaos: standby restore: %w", err)
		f.results = append(f.results, res)
		return res
	}
	if err := standby.ReplayJournal(tail); err != nil {
		res.Err = fmt.Errorf("chaos: standby replay: %w", err)
		f.results = append(f.results, res)
		return res
	}
	res.RestoreWall = time.Since(start)
	res.DigestMatch = standby.StateDigest() == f.cfg.Cluster.StateDigest()
	res.ConsistencyOK = standby.ConsistencyErrors() == nil
	res.RecoverableLost = recoverableLost(f.cfg.Cluster, standby)
	f.results = append(f.results, res)
	return res
}

// CrashZombie is the fenced-writer drill. It runs a standard Crash
// (standby restored and verified), then models the promotion's fencing
// side: the new writer bumps the shared journal's epoch, the old primary —
// whose process lingers, unaware it lost the election — attempts late
// mutations, and every one must bounce off the epoch fence without
// touching durable state. Finally the primary re-adopts the journal epoch,
// modeling the verified standby handing the writer role back (the harness
// keeps simulating on the primary, as Crash does).
func (f *Failover) CrashZombie() FailoverResult {
	res := f.Crash()
	res.Zombie = true
	c := f.cfg.Cluster
	j := c.Journal()
	j.BumpEpoch() // the promoted standby fences the old writer

	before := c.StateDigest()
	mb := c.Metrics().FencedWritesApplied
	probe := fmt.Sprintf("/zombie/probe-%d", j.NextSeq())
	if _, err := c.CreateFile(probe, 1, 1, -1); errors.Is(err, hdfs.ErrFenced) {
		res.FencedRejected++
	}
	if err := c.DeleteFile(probe); errors.Is(err, hdfs.ErrFenced) {
		res.FencedRejected++
	}
	res.FencedApplied = c.Metrics().FencedWritesApplied - mb
	if c.StateDigest() != before {
		res.FencedApplied++
	}

	c.AdoptEpoch() // primary re-wins the election and resumes as writer
	f.results[len(f.results)-1] = res
	return res
}

// recoverableLost counts blocks readable on the primary (at least one
// live replica) that the standby either does not know or knows with no
// replicas. Blocks already unrecoverable on the primary do not count —
// a failover cannot be blamed for data the primary had lost too.
func recoverableLost(primary, standby *hdfs.Cluster) int {
	lost := 0
	for _, path := range primary.FilePaths() {
		f := primary.File(path)
		sf := standby.File(path)
		for _, ids := range [][]hdfs.BlockID{f.Blocks, f.Parity} {
			for _, id := range ids {
				if len(primary.Replicas(id)) == 0 {
					continue
				}
				if sf == nil || len(standby.Replicas(id)) == 0 {
					lost++
				}
			}
		}
	}
	return lost
}
