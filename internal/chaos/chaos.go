// Package chaos is a scripted fault-injection harness for the simulated
// cluster. A Plan is a time-ordered list of fault events — node crashes
// and restarts, rack partitions and heals, slow disks/NICs, silent
// replica corruption — applied to a live hdfs.Cluster at their scheduled
// virtual times. Storm generates a random but fully seeded Plan, so a
// six-hour failure barrage is reproducible bit-for-bit and usable in
// deterministic soak tests.
package chaos

import (
	"fmt"
	"sort"
	"time"

	"erms/internal/hdfs"
	"erms/internal/sim"
	"erms/internal/topology"
)

// Kind labels one fault type.
type Kind int

// Fault kinds.
const (
	// Crash kills a datanode process (heartbeats stop; with heartbeat
	// detection enabled the namenode only notices after StaleTimeout).
	Crash Kind = iota
	// Restart brings a crashed/down datanode back with an empty disk.
	Restart
	// PartitionRack cuts a rack off from the rest of the cluster.
	PartitionRack
	// HealRack lifts a rack partition.
	HealRack
	// SlowNode degrades a node's disk and both NIC directions to Factor ×
	// nominal capacity (a failing disk, a flapping NIC).
	SlowNode
	// RestoreNode returns a slowed node's links to full capacity.
	RestoreNode
	// CorruptReplica silently flips bits in one stored replica, chosen at
	// fire time by (BlockOrdinal, ReplicaOrdinal) over the live namespace.
	CorruptReplica
	// NamenodeCrash fails the namenode over: a standby restores the rolling
	// checkpoint, replays the journal tail, and is verified against the
	// primary. Requires Plan.Failover; skipped otherwise.
	NamenodeCrash
	// ZombiePrimary is a fenced-writer drill: the namenode "crashes" but its
	// process lingers, a standby is promoted (bumping the journal epoch),
	// and the zombie's late mutations must bounce off the fence before the
	// primary re-wins the election. Requires Plan.Failover; skipped
	// otherwise.
	ZombiePrimary
	// StallNode suppresses a node's heartbeats without touching its data
	// plane (a long GC pause, a wedged heartbeat thread): the namenode ages
	// it toward stale/dead while it keeps serving.
	StallNode
	// UnstallNode restores a stalled node's heartbeats.
	UnstallNode
	// RestartRack restarts every down or crashed node in a rack — the power
	// coming back after a whole-rack outage.
	RestartRack
)

func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Restart:
		return "restart"
	case PartitionRack:
		return "partition"
	case HealRack:
		return "heal"
	case SlowNode:
		return "slow"
	case RestoreNode:
		return "restore"
	case CorruptReplica:
		return "corrupt"
	case NamenodeCrash:
		return "namenode-crash"
	case ZombiePrimary:
		return "zombie-primary"
	case StallNode:
		return "stall"
	case UnstallNode:
		return "unstall"
	case RestartRack:
		return "restart-rack"
	}
	return "unknown"
}

// Event is one scheduled fault.
type Event struct {
	At   time.Duration
	Kind Kind
	// Node targets Crash/Restart/SlowNode/RestoreNode/StallNode/UnstallNode.
	Node hdfs.DatanodeID
	// Rack targets PartitionRack/HealRack/RestartRack.
	Rack int
	// Factor is SlowNode's capacity multiplier (0 < Factor < 1 degrades).
	Factor float64
	// BlockOrdinal / ReplicaOrdinal select CorruptReplica's victim at fire
	// time: ordinal modulo the live block list (sorted by ID) and that
	// block's replica list. Resolving late keeps plans valid against a
	// namespace that did not exist when the plan was written.
	BlockOrdinal   int
	ReplicaOrdinal int
}

// Plan is a scripted fault schedule.
type Plan struct {
	Events []Event
	// Failover gives NamenodeCrash events a target; see NewFailover. Plans
	// without one skip namenode crashes, so datanode-only storms need no
	// journal.
	Failover *Failover
}

// Report tallies what a scheduled plan actually did.
type Report struct {
	Applied int
	// Skipped events found no valid target at fire time (restart of a
	// node that is not down, corruption of an empty namespace, …).
	Skipped int
	// PerKind counts applied events by kind string.
	PerKind map[string]int
}

// Schedule installs every event of the plan onto the cluster's engine.
// The returned Report is filled in as events fire; read it after the
// simulation has run past the last event.
func (p *Plan) Schedule(engine *sim.Engine, c *hdfs.Cluster) *Report {
	rep := &Report{PerKind: map[string]int{}}
	events := append([]Event(nil), p.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	now := engine.Now()
	for _, ev := range events {
		ev := ev
		delay := ev.At - now
		if delay < 0 {
			delay = 0
		}
		engine.Schedule(delay, func() {
			if p.apply(c, ev) {
				rep.Applied++
				rep.PerKind[ev.Kind.String()]++
			} else {
				rep.Skipped++
			}
		})
	}
	return rep
}

// apply executes one fault against the cluster; false means no valid
// target existed at fire time.
func (p *Plan) apply(c *hdfs.Cluster, ev Event) bool {
	switch ev.Kind {
	case NamenodeCrash:
		if p.Failover == nil {
			return false
		}
		p.Failover.Crash()
		return true
	case ZombiePrimary:
		if p.Failover == nil {
			return false
		}
		p.Failover.CrashZombie()
		return true
	case StallNode:
		d := c.Datanode(ev.Node)
		if d == nil || d.State == hdfs.StateDown || d.Crashed() || d.Stalled() {
			return false
		}
		c.StallNode(ev.Node, true)
		return true
	case UnstallNode:
		d := c.Datanode(ev.Node)
		if d == nil || !d.Stalled() {
			return false
		}
		c.StallNode(ev.Node, false)
		return true
	case RestartRack:
		topo := c.Topology()
		restarted := false
		for _, d := range c.Datanodes() {
			if topo.Rack(topology.NodeID(d.ID)) != ev.Rack {
				continue
			}
			if d.State == hdfs.StateDown || d.Crashed() {
				c.Restart(d.ID)
				restarted = true
			}
		}
		return restarted
	case Crash:
		d := c.Datanode(ev.Node)
		if d == nil || d.State == hdfs.StateDown || d.Crashed() {
			return false
		}
		c.Kill(ev.Node)
		return true
	case Restart:
		d := c.Datanode(ev.Node)
		if d == nil || (d.State != hdfs.StateDown && !d.Crashed()) {
			return false
		}
		c.Restart(ev.Node)
		return true
	case PartitionRack:
		if c.RackPartitioned(ev.Rack) {
			return false
		}
		c.PartitionRack(ev.Rack)
		return true
	case HealRack:
		if !c.RackPartitioned(ev.Rack) {
			return false
		}
		c.HealRack(ev.Rack)
		return true
	case SlowNode:
		return setNodeFactor(c, ev.Node, ev.Factor)
	case RestoreNode:
		return setNodeFactor(c, ev.Node, 1)
	case CorruptReplica:
		bid, dn, ok := pickVictim(c, ev.BlockOrdinal, ev.ReplicaOrdinal)
		if !ok {
			return false
		}
		return c.CorruptReplica(bid, dn) == nil
	}
	return false
}

// setNodeFactor scales the node's disk and both NIC links.
func setNodeFactor(c *hdfs.Cluster, id hdfs.DatanodeID, factor float64) bool {
	if factor <= 0 {
		return false
	}
	topo := c.Topology()
	if int(id) < 0 || int(id) >= len(topo.Nodes) {
		return false
	}
	node := topo.Node(topology.NodeID(id))
	for _, l := range []topology.LinkID{node.Disk, node.NICIn, node.NICOut} {
		c.Fabric().SetLinkFactor(l, factor)
	}
	return true
}

// pickVictim resolves a corruption target over the live namespace:
// blocks (data then parity, per file in path order) sorted by ID, indexed
// by ordinal modulo length; ditto for the block's replica list.
func pickVictim(c *hdfs.Cluster, blockOrdinal, replicaOrdinal int) (hdfs.BlockID, hdfs.DatanodeID, bool) {
	var ids []hdfs.BlockID
	for _, path := range c.FilePaths() {
		f := c.File(path)
		ids = append(ids, f.Blocks...)
		ids = append(ids, f.Parity...)
	}
	if len(ids) == 0 {
		return 0, 0, false
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	bid := ids[mod(blockOrdinal, len(ids))]
	reps := c.Replicas(bid)
	if len(reps) == 0 {
		return 0, 0, false
	}
	return bid, reps[mod(replicaOrdinal, len(reps))], true
}

func mod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}

// String renders the plan, one event per line, for debugging and golden
// comparisons.
func (p *Plan) String() string {
	out := ""
	for _, ev := range p.Events {
		out += fmt.Sprintf("%010.3fs %s node=%d rack=%d factor=%g ord=%d/%d\n",
			ev.At.Seconds(), ev.Kind, ev.Node, ev.Rack, ev.Factor,
			ev.BlockOrdinal, ev.ReplicaOrdinal)
	}
	return out
}
