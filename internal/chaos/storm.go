package chaos

import (
	"sort"
	"time"

	"erms/internal/hdfs"
	"erms/internal/sim"
)

// StormConfig parameterizes a random fault storm. Every field that is a
// count is a target number of fault *pairs* (a crash comes with its
// restart, a partition with its heal, a slowdown with its restore), so a
// storm never leaves permanent damage behind by construction — permanent
// faults belong in a hand-written Plan.
type StormConfig struct {
	// Seed drives all randomness; equal seeds give equal plans.
	Seed int64
	// Duration is the window faults are spread over.
	Duration time.Duration
	// Nodes are the candidate victims for crashes and slowdowns.
	Nodes []hdfs.DatanodeID
	// Racks are the candidate victims for partitions.
	Racks []int

	// Crashes is the number of crash+restart pairs.
	Crashes int
	// Downtime is how long a crashed node stays down before its restart
	// (jittered ±50%); default 10 minutes.
	Downtime time.Duration
	// MaxConcurrentDown bounds how many storm-crashed nodes may be down at
	// once, so a small cluster is not annihilated; default 2.
	MaxConcurrentDown int

	// Partitions is the number of partition+heal pairs.
	Partitions int
	// PartitionHeal is how long a rack stays cut off (jittered ±50%);
	// default 2 minutes.
	PartitionHeal time.Duration

	// Corruptions is the number of silent replica corruptions.
	Corruptions int

	// NamenodeCrashes is the number of namenode failovers. They only fire
	// when the scheduled plan carries a Failover harness (Plan.Failover).
	NamenodeCrashes int

	// SlowNodes is the number of slowdown+restore pairs.
	SlowNodes int
	// SlowFactor is the degraded capacity multiplier; default 0.1.
	SlowFactor float64
	// SlowFor is how long a node stays degraded (jittered ±50%); default
	// 5 minutes.
	SlowFor time.Duration

	// RackOutages is the number of correlated whole-rack outages: the rack
	// is partitioned long enough for the namenode to declare its nodes dead,
	// then healed and power-cycled (RestartRack) shortly after.
	RackOutages int
	// RackOutageFor is how long an outage lasts before the heal (jittered
	// ±50%); default 8 minutes — comfortably past typical dead timeouts.
	RackOutageFor time.Duration

	// FlapNodes is the number of heartbeat-flapping episodes: a node's
	// heartbeats stall (it ages toward stale/dead while still serving) and
	// resume after FlapFor.
	FlapNodes int
	// FlapFor is how long heartbeats stay suppressed (jittered ±50%);
	// default 45 seconds — long enough to go stale, short of dead.
	FlapFor time.Duration

	// ZombiePrimaries is the number of fenced-writer drills (ZombiePrimary
	// events). They only fire when the plan carries a Failover harness.
	ZombiePrimaries int
}

func (cfg *StormConfig) applyDefaults() {
	if cfg.Duration <= 0 {
		cfg.Duration = time.Hour
	}
	if cfg.Downtime <= 0 {
		cfg.Downtime = 10 * time.Minute
	}
	if cfg.MaxConcurrentDown <= 0 {
		cfg.MaxConcurrentDown = 2
	}
	if cfg.PartitionHeal <= 0 {
		cfg.PartitionHeal = 2 * time.Minute
	}
	if cfg.SlowFactor <= 0 || cfg.SlowFactor >= 1 {
		cfg.SlowFactor = 0.1
	}
	if cfg.SlowFor <= 0 {
		cfg.SlowFor = 5 * time.Minute
	}
	if cfg.RackOutageFor <= 0 {
		cfg.RackOutageFor = 8 * time.Minute
	}
	if cfg.FlapFor <= 0 {
		cfg.FlapFor = 45 * time.Second
	}
}

// Storm generates a random fault plan from the config. The plan is a pure
// function of the config (including Seed): generation draws from one
// seeded stream in a fixed order, and the result is sorted by time with a
// stable tie-break, so identical configs yield byte-identical plans.
func Storm(cfg StormConfig) *Plan {
	cfg.applyDefaults()
	rng := sim.NewRand(cfg.Seed)
	var events []Event

	jitter := func(d time.Duration) time.Duration {
		// ±50%, strictly positive.
		return time.Duration(float64(d) * (0.5 + rng.Float64()))
	}
	at := func() time.Duration {
		return time.Duration(rng.Int63n(int64(cfg.Duration)))
	}

	// Crash+restart pairs, packed greedily under the concurrency bound:
	// candidate windows are drawn, then accepted only while fewer than
	// MaxConcurrentDown accepted windows overlap.
	type window struct{ start, end time.Duration }
	var accepted []window
	overlaps := func(w window) int {
		n := 0
		for _, o := range accepted {
			if w.start < o.end && o.start < w.end {
				n++
			}
		}
		return n
	}
	if len(cfg.Nodes) > 0 {
		placed := 0
		for tries := 0; placed < cfg.Crashes && tries < cfg.Crashes*20; tries++ {
			start := at()
			w := window{start: start, end: start + jitter(cfg.Downtime)}
			if overlaps(w) >= cfg.MaxConcurrentDown {
				continue
			}
			node := cfg.Nodes[rng.Intn(len(cfg.Nodes))]
			// One node cannot crash twice while still down: reject windows
			// overlapping an accepted window only if same node is cheaper
			// to just re-draw the node; keep it simple and allow it — the
			// Crash event no-ops (Skipped) on an already-down node.
			accepted = append(accepted, w)
			events = append(events,
				Event{At: w.start, Kind: Crash, Node: node},
				Event{At: w.end, Kind: Restart, Node: node},
			)
			placed++
		}
	}

	if len(cfg.Racks) > 0 {
		for i := 0; i < cfg.Partitions; i++ {
			start := at()
			rack := cfg.Racks[rng.Intn(len(cfg.Racks))]
			events = append(events,
				Event{At: start, Kind: PartitionRack, Rack: rack},
				Event{At: start + jitter(cfg.PartitionHeal), Kind: HealRack, Rack: rack},
			)
		}
	}

	for i := 0; i < cfg.Corruptions; i++ {
		events = append(events, Event{
			At:             at(),
			Kind:           CorruptReplica,
			BlockOrdinal:   rng.Intn(1 << 20),
			ReplicaOrdinal: rng.Intn(1 << 10),
		})
	}

	if len(cfg.Nodes) > 0 {
		for i := 0; i < cfg.SlowNodes; i++ {
			start := at()
			node := cfg.Nodes[rng.Intn(len(cfg.Nodes))]
			events = append(events,
				Event{At: start, Kind: SlowNode, Node: node, Factor: cfg.SlowFactor},
				Event{At: start + jitter(cfg.SlowFor), Kind: RestoreNode, Node: node},
			)
		}
	}

	// Namenode crashes draw after the datanode faults so adding them leaves
	// the datanode fault schedule of an equal-seed storm unchanged; each
	// knob added since draws after everything older, for the same reason.
	for i := 0; i < cfg.NamenodeCrashes; i++ {
		events = append(events, Event{At: at(), Kind: NamenodeCrash})
	}

	// Correlated rack outage: partition, heal well past the dead timeout,
	// then power-cycle whatever the namenode declared dead.
	if len(cfg.Racks) > 0 {
		for i := 0; i < cfg.RackOutages; i++ {
			start := at()
			rack := cfg.Racks[rng.Intn(len(cfg.Racks))]
			heal := start + jitter(cfg.RackOutageFor)
			events = append(events,
				Event{At: start, Kind: PartitionRack, Rack: rack},
				Event{At: heal, Kind: HealRack, Rack: rack},
				Event{At: heal + 30*time.Second, Kind: RestartRack, Rack: rack},
			)
		}
	}

	// Heartbeat flapping: stall+unstall pairs.
	if len(cfg.Nodes) > 0 {
		for i := 0; i < cfg.FlapNodes; i++ {
			start := at()
			node := cfg.Nodes[rng.Intn(len(cfg.Nodes))]
			events = append(events,
				Event{At: start, Kind: StallNode, Node: node},
				Event{At: start + jitter(cfg.FlapFor), Kind: UnstallNode, Node: node},
			)
		}
	}

	for i := 0; i < cfg.ZombiePrimaries; i++ {
		events = append(events, Event{At: at(), Kind: ZombiePrimary})
	}

	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return &Plan{Events: events}
}
