package topology

import (
	"testing"
	"testing/quick"
)

func TestDefaultsMatchPaperTestbed(t *testing.T) {
	topo := New(Config{})
	if topo.NumNodes() != 18 {
		t.Fatalf("NumNodes = %d, want 18", topo.NumNodes())
	}
	if topo.NumRacks() != 3 {
		t.Fatalf("NumRacks = %d, want 3", topo.NumRacks())
	}
	perRack := map[int]int{}
	for _, n := range topo.Nodes {
		perRack[n.Rack]++
	}
	for r := 0; r < 3; r++ {
		if perRack[r] != 6 {
			t.Fatalf("rack %d has %d nodes, want 6", r, perRack[r])
		}
	}
}

func TestLinkKinds(t *testing.T) {
	topo := New(Config{Racks: 2, NodeCount: 4})
	counts := map[LinkKind]int{}
	for _, l := range topo.Links {
		counts[l.Kind]++
	}
	if counts[LinkDisk] != 4 || counts[LinkNICOut] != 4 || counts[LinkNICIn] != 4 {
		t.Fatalf("per-node link counts wrong: %v", counts)
	}
	if counts[LinkRackUp] != 2 || counts[LinkRackDown] != 2 {
		t.Fatalf("rack link counts wrong: %v", counts)
	}
	for k, s := range map[LinkKind]string{
		LinkDisk: "disk", LinkNICOut: "nic-out", LinkNICIn: "nic-in",
		LinkRackUp: "rack-up", LinkRackDown: "rack-down",
	} {
		if k.String() != s {
			t.Fatalf("Kind %d String = %q, want %q", k, k.String(), s)
		}
	}
	if LinkKind(99).String() != "unknown" {
		t.Fatal("unknown kind string")
	}
}

func TestLocalReadPathIsDiskOnly(t *testing.T) {
	topo := New(Config{})
	p := topo.ReadPath(3, 3)
	if len(p) != 1 || p[0] != topo.Node(3).Disk {
		t.Fatalf("local read path = %v, want [disk]", p)
	}
}

func TestSameRackReadPath(t *testing.T) {
	topo := New(Config{})
	// Find two nodes in the same rack.
	nodes := topo.NodesInRack(0)
	src, dst := nodes[0], nodes[1]
	p := topo.ReadPath(src, dst)
	want := []LinkID{topo.Node(src).Disk, topo.Node(src).NICOut, topo.Node(dst).NICIn}
	if len(p) != 3 {
		t.Fatalf("same-rack path length = %d, want 3 (%v)", len(p), p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
}

func TestCrossRackReadPathIncludesUplinks(t *testing.T) {
	topo := New(Config{})
	src := topo.NodesInRack(0)[0]
	dst := topo.NodesInRack(1)[0]
	p := topo.ReadPath(src, dst)
	if len(p) != 5 {
		t.Fatalf("cross-rack path length = %d, want 5", len(p))
	}
	if p[2] != topo.RackUplink(0) || p[3] != topo.RackDownlink(1) {
		t.Fatalf("path missing rack hops: %v", p)
	}
}

func TestTransferPathAppendsDestDisk(t *testing.T) {
	topo := New(Config{})
	src := topo.NodesInRack(0)[0]
	dst := topo.NodesInRack(1)[0]
	p := topo.TransferPath(src, dst)
	if p[len(p)-1] != topo.Node(dst).Disk {
		t.Fatalf("transfer path must end at destination disk: %v", p)
	}
	if len(p) != len(topo.ReadPath(src, dst))+1 {
		t.Fatalf("transfer path length")
	}
	if lp := topo.TransferPath(src, src); len(lp) != 1 {
		t.Fatalf("same-node transfer path = %v", lp)
	}
}

func TestSameRackHelper(t *testing.T) {
	topo := New(Config{})
	r0 := topo.NodesInRack(0)
	r1 := topo.NodesInRack(1)
	if !topo.SameRack(r0[0], r0[1]) {
		t.Fatal("same-rack nodes reported as different")
	}
	if topo.SameRack(r0[0], r1[0]) {
		t.Fatal("cross-rack nodes reported as same")
	}
	if topo.Rack(r1[0]) != 1 {
		t.Fatalf("Rack = %d, want 1", topo.Rack(r1[0]))
	}
}

func TestUnbalancedRacks(t *testing.T) {
	topo := New(Config{Racks: 2, NodesPerRack: []int{1, 4}})
	if topo.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", topo.NumNodes())
	}
	if len(topo.NodesInRack(0)) != 1 || len(topo.NodesInRack(1)) != 4 {
		t.Fatal("rack membership wrong")
	}
}

func TestMismatchedRackSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Racks: 3, NodesPerRack: []int{1, 2}})
}

// Property: every node's links are distinct and every path consists of valid
// link IDs.
func TestQuickPathsValid(t *testing.T) {
	topo := New(Config{Racks: 3, NodeCount: 12})
	f := func(a, b uint8) bool {
		src := NodeID(int(a) % topo.NumNodes())
		dst := NodeID(int(b) % topo.NumNodes())
		for _, p := range [][]LinkID{topo.ReadPath(src, dst), topo.TransferPath(src, dst)} {
			seen := map[LinkID]bool{}
			for _, l := range p {
				if l < 0 || int(l) >= len(topo.Links) {
					return false
				}
				if seen[l] {
					return false // no duplicate links on a path
				}
				seen[l] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
