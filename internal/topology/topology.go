// Package topology models the physical cluster: racks, nodes, and the
// capacity-limited resources (disk streams, NICs, rack uplinks) that reads
// and replication traffic contend for.
//
// The model matches the paper's testbed shape: commodity nodes with a single
// SATA disk and a Gigabit NIC, grouped into racks whose uplinks to the core
// are oversubscribed. Each resource becomes a link in the netsim fabric; a
// transfer's path is the ordered set of links it crosses.
package topology

import "fmt"

// LinkID indexes a capacity-limited resource in the fabric.
type LinkID int

// NodeID identifies a machine.
type NodeID int

// LinkKind labels what a link models, for debugging and reports.
type LinkKind int

const (
	// LinkDisk is a node's disk streaming bandwidth (shared by reads and writes).
	LinkDisk LinkKind = iota
	// LinkNICOut is a node's egress network bandwidth.
	LinkNICOut
	// LinkNICIn is a node's ingress network bandwidth.
	LinkNICIn
	// LinkRackUp is a rack's uplink toward the core switch.
	LinkRackUp
	// LinkRackDown is a rack's downlink from the core switch.
	LinkRackDown
)

func (k LinkKind) String() string {
	switch k {
	case LinkDisk:
		return "disk"
	case LinkNICOut:
		return "nic-out"
	case LinkNICIn:
		return "nic-in"
	case LinkRackUp:
		return "rack-up"
	case LinkRackDown:
		return "rack-down"
	}
	return "unknown"
}

// Link describes one capacity-limited resource.
type Link struct {
	ID       LinkID
	Kind     LinkKind
	Name     string
	Capacity float64 // bytes per second
}

// Node is a machine with a disk and a NIC, placed in a rack.
type Node struct {
	ID     NodeID
	Name   string
	Rack   int
	Disk   LinkID
	NICOut LinkID
	NICIn  LinkID
}

// Config sizes a cluster. Zero fields take 2012-commodity defaults matching
// the paper's testbed (Gigabit Ethernet, single SATA disk per node).
type Config struct {
	Racks        int
	NodesPerRack []int   // length Racks; nil means balanced NodeCount/Racks
	NodeCount    int     // used when NodesPerRack is nil
	DiskBW       float64 // bytes/s per node disk; default 80 MB/s
	NICBW        float64 // bytes/s per direction; default 125 MB/s (1 Gbps)
	RackUplinkBW float64 // bytes/s per direction; default 250 MB/s (2 Gbps)
}

// MB is a convenience constant: one megabyte in bytes.
const MB = 1 << 20

// GB is one gigabyte in bytes.
const GB = 1 << 30

func (c *Config) applyDefaults() {
	if c.Racks <= 0 {
		c.Racks = 3
	}
	if c.DiskBW <= 0 {
		c.DiskBW = 80 * MB
	}
	if c.NICBW <= 0 {
		c.NICBW = 125 * MB
	}
	if c.RackUplinkBW <= 0 {
		c.RackUplinkBW = 250 * MB
	}
	if c.NodesPerRack == nil {
		if c.NodeCount <= 0 {
			c.NodeCount = 18
		}
		c.NodesPerRack = make([]int, c.Racks)
		for i := 0; i < c.NodeCount; i++ {
			c.NodesPerRack[i%c.Racks]++
		}
	}
}

// Topology is an immutable cluster layout plus its link table.
type Topology struct {
	Nodes    []Node
	Links    []Link
	rackUp   []LinkID
	rackDown []LinkID
	racks    int
}

// New builds a topology from cfg.
func New(cfg Config) *Topology {
	cfg.applyDefaults()
	if len(cfg.NodesPerRack) != cfg.Racks {
		panic(fmt.Sprintf("topology: NodesPerRack has %d entries for %d racks",
			len(cfg.NodesPerRack), cfg.Racks))
	}
	t := &Topology{racks: cfg.Racks}
	addLink := func(kind LinkKind, name string, cap float64) LinkID {
		id := LinkID(len(t.Links))
		t.Links = append(t.Links, Link{ID: id, Kind: kind, Name: name, Capacity: cap})
		return id
	}
	for r := 0; r < cfg.Racks; r++ {
		t.rackUp = append(t.rackUp, addLink(LinkRackUp, fmt.Sprintf("rack%d-up", r), cfg.RackUplinkBW))
		t.rackDown = append(t.rackDown, addLink(LinkRackDown, fmt.Sprintf("rack%d-down", r), cfg.RackUplinkBW))
	}
	for r := 0; r < cfg.Racks; r++ {
		for i := 0; i < cfg.NodesPerRack[r]; i++ {
			id := NodeID(len(t.Nodes))
			name := fmt.Sprintf("node%02d", int(id))
			t.Nodes = append(t.Nodes, Node{
				ID:     id,
				Name:   name,
				Rack:   r,
				Disk:   addLink(LinkDisk, name+"/disk", cfg.DiskBW),
				NICOut: addLink(LinkNICOut, name+"/out", cfg.NICBW),
				NICIn:  addLink(LinkNICIn, name+"/in", cfg.NICBW),
			})
		}
	}
	return t
}

// NumNodes returns the machine count.
func (t *Topology) NumNodes() int { return len(t.Nodes) }

// NumRacks returns the rack count.
func (t *Topology) NumRacks() int { return t.racks }

// Node returns the node with the given ID.
func (t *Topology) Node(id NodeID) *Node { return &t.Nodes[id] }

// Rack returns the rack index of a node.
func (t *Topology) Rack(id NodeID) int { return t.Nodes[id].Rack }

// SameRack reports whether two nodes share a rack.
func (t *Topology) SameRack(a, b NodeID) bool { return t.Nodes[a].Rack == t.Nodes[b].Rack }

// NodesInRack lists the node IDs in rack r.
func (t *Topology) NodesInRack(r int) []NodeID {
	var out []NodeID
	for _, n := range t.Nodes {
		if n.Rack == r {
			out = append(out, n.ID)
		}
	}
	return out
}

// ReadPath returns the links a block read crosses when client dst reads from
// datanode src: the source disk, then (if remote) the source NIC, any rack
// hops, and the destination NIC. A node-local read touches only the disk.
func (t *Topology) ReadPath(src, dst NodeID) []LinkID {
	s := &t.Nodes[src]
	if src == dst {
		return []LinkID{s.Disk}
	}
	d := &t.Nodes[dst]
	path := []LinkID{s.Disk, s.NICOut}
	if s.Rack != d.Rack {
		path = append(path, t.rackUp[s.Rack], t.rackDown[d.Rack])
	}
	return append(path, d.NICIn)
}

// ExternalPath returns the links a read crosses when the consumer is an
// application server outside the cluster (the paper's Figure 8/9 clients):
// the source disk, its NIC, and its rack uplink; the core and the client's
// own network are assumed unbounded.
func (t *Topology) ExternalPath(src NodeID) []LinkID {
	s := &t.Nodes[src]
	return []LinkID{s.Disk, s.NICOut, t.rackUp[s.Rack]}
}

// TransferPath returns the links a replica transfer crosses from datanode
// src to datanode dst, including the destination disk write. Replication is
// disk-to-disk, unlike a client read which consumes the data in memory.
func (t *Topology) TransferPath(src, dst NodeID) []LinkID {
	if src == dst {
		return []LinkID{t.Nodes[src].Disk}
	}
	return append(t.ReadPath(src, dst), t.Nodes[dst].Disk)
}

// RackUplink exposes rack r's uplink (for reports).
func (t *Topology) RackUplink(r int) LinkID { return t.rackUp[r] }

// RackDownlink exposes rack r's downlink.
func (t *Topology) RackDownlink(r int) LinkID { return t.rackDown[r] }
