// Package erms is an elastic replication management system for an HDFS
// model, reproducing Cheng et al., "ERMS: An Elastic Replication
// Management System for HDFS" (IEEE CLUSTER 2012 Workshops).
//
// ERMS watches the HDFS audit stream through a complex-event-processing
// engine, classifies every file as hot, cooled, normal or cold, and reacts
// elastically: hot data gains extra replicas on commissioned standby
// nodes, cooled data loses them again (standby-first, no rebalancing),
// and cold data is Reed–Solomon encoded (one replica plus four parities)
// to reclaim storage. Management tasks run through a Condor-style
// scheduler: urgent work immediately, space-reclaiming work when the
// cluster is idle, with a replayable user log and automatic rollback.
//
// Everything — the cluster, disks, network, schedulers — runs on a
// deterministic discrete-event simulation, so experiments are exactly
// reproducible and take milliseconds of wall time per simulated hour.
//
// # Quick start
//
//	sys := erms.NewSystem(erms.Options{})      // 18-node testbed, 8 standby
//	sys.CreateFile("/data/logs", 640*erms.MB)  // triplicated by default
//	for i := 0; i < 40; i++ {                  // make it hot
//		sys.Read(i%10, "/data/logs", nil)
//	}
//	sys.RunFor(10 * time.Minute)               // judge reacts, replicas grow
//	fmt.Println(sys.Replication("/data/logs")) // > 3
//
// The internal packages expose the full substrates (HDFS model, CEP
// engine, ClassAds, Condor scheduler, Reed–Solomon codec, SWIM-style
// workload synthesis); the aliases below surface the types needed to use
// them through this package.
package erms

import (
	"time"

	"erms/internal/auditlog"
	"erms/internal/core"
	"erms/internal/federation"
	"erms/internal/hdfs"
	"erms/internal/mapred"
	"erms/internal/metrics"
	"erms/internal/sim"
	"erms/internal/topology"
	"erms/internal/trace"
	"erms/internal/workload"
)

// Re-exported size units.
const (
	// MB is one megabyte in bytes.
	MB = float64(topology.MB)
	// GB is one gigabyte in bytes.
	GB = float64(topology.GB)
)

// Aliases surfacing the main configuration and result types so callers of
// this package rarely need the internal import paths.
type (
	// Thresholds are the Data Judge tunables (τ_M, M_M, M_m, ε, τ_d, τ_m,
	// τ_DN, cold age, erasure geometry).
	Thresholds = core.Thresholds
	// Decision is one judge output (class, action, target replication).
	Decision = core.Decision
	// ReadResult describes one completed file read.
	ReadResult = hdfs.ReadResult
	// WriteResult describes one completed pipelined write.
	WriteResult = hdfs.WriteResult
	// BalancerReport summarizes a balancer run.
	BalancerReport = hdfs.BalancerReport
	// Job is a MapReduce job for Submit.
	Job = mapred.Job
	// Trace is a synthetic SWIM-style workload.
	Trace = workload.Trace
	// WorkloadConfig tunes trace synthesis.
	WorkloadConfig = workload.Config
	// EnergyReport summarizes standby-pool uptime.
	EnergyReport = core.EnergyReport
	// HDFSMetrics aggregates storage-level counters.
	HDFSMetrics = hdfs.Metrics
	// SafeModeConfig tunes the namenode safe-mode guard (see
	// Options.SafeMode).
	SafeModeConfig = hdfs.SafeModeConfig
	// RepairConfig caps the prioritized re-replication pipeline (see
	// Options.Repair).
	RepairConfig = core.RepairConfig
	// HeartbeatConfig tunes the heartbeat failure detector (see
	// Options.Heartbeat).
	HeartbeatConfig = hdfs.HeartbeatConfig
)

// WallClock is the wall-time seam for service mode: Now/After/Sleep,
// with a real implementation backed by package time and a simulated one
// backed by the discrete-event engine (see Options.Clock and sim.WallClock).
type WallClock = sim.WallClock

// RealClock returns the production wall clock backed by package time.
// A System built with Options{Clock: RealClock()} runs in service mode on
// real time — the deployment mode of cmd/ermsd.
func RealClock() WallClock { return sim.Real() }

// DefaultThresholds returns the paper-calibrated judge thresholds.
func DefaultThresholds() Thresholds { return core.DefaultThresholds() }

// SynthesizeWorkload builds a deterministic heavy-tailed trace.
func SynthesizeWorkload(cfg WorkloadConfig) *Trace { return workload.Synthesize(cfg) }

// Options sizes a System. The zero value reproduces the paper's testbed:
// 18 datanodes in 3 racks, 64 MB blocks, default replication 3, and (when
// ERMS is enabled) the last 8 nodes as the standby pool.
type Options struct {
	// Racks in the cluster (default 3).
	Racks int
	// Nodes is the total datanode count (default 18).
	Nodes int
	// StandbyNodes is the size of the ERMS standby pool taken from the end
	// of the node range (default 8; pass -1 to run ERMS with every node
	// active). Ignored when DisableERMS is set.
	StandbyNodes int
	// BlockSize in bytes (default 64 MB).
	BlockSize float64
	// DefaultReplication (default 3).
	DefaultReplication int
	// Thresholds for the Data Judge (zero fields take defaults).
	Thresholds Thresholds
	// Scheduler selects the MapReduce scheduler: "fifo" (default) or
	// "fair".
	Scheduler string
	// SlotsPerNode is the map-slot count per node (default 2).
	SlotsPerNode int
	// DisableERMS runs a vanilla triplicating HDFS with every node active
	// (the paper's baseline).
	DisableERMS bool
	// JudgePeriod overrides how often the Data Judge runs (default: the
	// thresholds window).
	JudgePeriod time.Duration
	// EnableTrace records spans for every control-loop hop (audit burst →
	// judge verdict → Condor job → per-replica transfer) for export with
	// Tracer().WriteChromeTrace. Off by default so the hot path stays
	// allocation-free.
	EnableTrace bool
	// EnableJournal attaches a write-ahead journal recording every durable
	// namenode mutation; Checkpoint + Journal().Tail form the failover
	// story (see NewStandby). Off by default: the journal grows with every
	// mutation and most experiments never fail the namenode over.
	EnableJournal bool
	// Heartbeat configures the heartbeat failure detector (off by default:
	// Kill declares nodes dead instantly, the legacy behaviour).
	Heartbeat HeartbeatConfig
	// SafeMode configures the namenode safe-mode guard: when Enabled, the
	// namenode rejects mutations and defers re-replication while block
	// availability or the live-node fraction sits below thresholds (and on
	// checkpoint restore), exiting only after a stable dwell.
	SafeMode SafeModeConfig
	// Repair caps the prioritized re-replication pipeline: cluster-wide and
	// per-node stream limits plus an optional bandwidth budget. Zero fields
	// take defaults; ignored when DisableERMS is set (repairs are the
	// manager's job).
	Repair RepairConfig
	// Clock, when non-nil, puts the System in service mode: virtual time
	// is paced against this wall clock instead of being driven by RunFor.
	// Pass RealClock() to track real time (what cmd/ermsd does) or a
	// sim.SimClock to run the identical service-mode code path
	// deterministically under test. The engine stays the single scheduling
	// authority either way — the clock only decides how fast CatchUp lets
	// it advance — so a sim-clocked service is byte-identical to a plain
	// simulation (see TestClockSeamEquivalence). Nil (the default) keeps
	// the classic pure-simulation behaviour.
	Clock WallClock
	// Shards federates the namespace across N namenode shards (see
	// federation.go): a pinned hash-of-path router assigns every file to
	// the shard owning its block map, under-replication set, journal
	// epoch, and judge instance, while datanodes stay global (every shard
	// sees the full topology and tracks its own block pool per node, the
	// HDFS federation model). 0 (the default) builds the classic single
	// namenode with no federation layer at all; 1 builds a one-shard
	// federation whose behavior and checkpoint bytes are identical to the
	// classic path — the regression gate; >= 2 partitions for real, with
	// cross-shard renames running the journaled two-phase move protocol.
	Shards int
}

// System bundles a simulated deployment: engine, HDFS, MapReduce runtime,
// and (unless disabled) the ERMS manager. With Options.Shards >= 1 it is
// instead a facade over a set of namenode shards sharing one engine (see
// federation.go); the single-system API routes by path and aggregates
// across shards, so existing callers run unchanged.
type System struct {
	engine   *sim.Engine
	cluster  *hdfs.Cluster
	mr       *mapred.Cluster
	manager  *core.Manager
	tracer   *trace.Tracer
	registry *metrics.Registry

	// Service-mode pacing state (see Options.Clock): nil wall means the
	// classic pure-simulation mode where only RunFor advances time.
	wall      WallClock
	wallStart time.Time

	// Federation state; nil/zero for a classic single-namenode system.
	// A federated facade has cluster and manager nil (every access routes
	// through shards); mr/tracer/registry mirror shard 0's.
	shards    []*System
	router    federation.Router
	childOpts Options     // per-shard Options (Shards stripped), for rebuilds
	snaps     []shardSnap // rolling per-shard snapshots for FailoverShard
}

// NewSystem builds a deployment from opts.
func NewSystem(opts Options) *System {
	var s *System
	if opts.Shards >= 1 {
		s = newFederated(opts)
	} else {
		s = newBase(opts)
		if opts.EnableJournal {
			s.cluster.SetJournal(auditlog.NewJournal())
		}
		s.attachManager(opts)
	}
	if opts.Clock != nil {
		s.wall = opts.Clock
		s.wallStart = s.wall.Now()
	}
	return s
}

// newBase builds everything except the ERMS manager and the journal, so
// NewStandby can restore state before either attaches.
func newBase(opts Options) *System { return newBaseOn(sim.NewEngine(), opts) }

// newBaseOn is newBase on a caller-supplied engine — federation builds
// every shard on one shared engine so the whole deployment advances on a
// single virtual clock.
func newBaseOn(engine *sim.Engine, opts Options) *System {
	if opts.Racks <= 0 {
		opts.Racks = 3
	}
	if opts.Nodes <= 0 {
		opts.Nodes = 18
	}
	if opts.StandbyNodes < 0 || opts.DisableERMS {
		opts.StandbyNodes = 0
	} else if opts.StandbyNodes == 0 {
		opts.StandbyNodes = 8
	}
	if opts.StandbyNodes >= opts.Nodes {
		opts.StandbyNodes = opts.Nodes / 2
	}
	topo := topology.New(topology.Config{Racks: opts.Racks, NodeCount: opts.Nodes})
	var standby []hdfs.DatanodeID
	for id := opts.Nodes - opts.StandbyNodes; id < opts.Nodes; id++ {
		standby = append(standby, hdfs.DatanodeID(id))
	}
	cluster := hdfs.New(engine, hdfs.Config{
		Topology:           topo,
		BlockSize:          opts.BlockSize,
		DefaultReplication: opts.DefaultReplication,
		StandbyNodes:       standby,
		Heartbeat:          opts.Heartbeat,
		SafeMode:           opts.SafeMode,
	})
	var sched mapred.Scheduler = mapred.NewFIFO()
	if opts.Scheduler == "fair" {
		sched = mapred.NewFair()
	}
	registry := metrics.NewRegistry()
	cluster.RegisterMetrics(registry)
	s := &System{
		engine:   engine,
		cluster:  cluster,
		mr:       mapred.New(cluster, opts.SlotsPerNode, sched),
		registry: registry,
	}
	if opts.EnableTrace {
		// The tracer must be attached before core.New: the manager hands
		// cluster.Tracer() to the Condor scheduler and the judge's CEP engine.
		s.tracer = trace.New(engine.Now)
		cluster.SetTracer(s.tracer)
	}
	return s
}

func (s *System) attachManager(opts Options) {
	if opts.DisableERMS {
		return
	}
	s.manager = core.New(s.cluster, core.Config{
		Thresholds:  opts.Thresholds,
		JudgePeriod: opts.JudgePeriod,
		Registry:    s.registry,
		Repair:      opts.Repair,
	})
}

// Engine returns the simulation engine (for scheduling custom events).
func (s *System) Engine() *sim.Engine { return s.engine }

// HDFS returns the storage cluster. On a federated facade this is shard
// 0's cluster; use Shard(i).HDFS() for a specific shard.
func (s *System) HDFS() *hdfs.Cluster {
	if s.shards != nil {
		return s.shards[0].cluster
	}
	return s.cluster
}

// MapReduce returns the job runtime.
func (s *System) MapReduce() *mapred.Cluster { return s.mr }

// Manager returns the ERMS manager, or nil when DisableERMS was set. On a
// federated facade this is shard 0's manager; each shard runs its own
// judge (Shard(i).Manager()).
func (s *System) Manager() *core.Manager {
	if s.shards != nil {
		return s.shards[0].manager
	}
	return s.manager
}

// Tracer returns the span recorder, or nil unless EnableTrace was set.
// A nil *trace.Tracer is safe to call (every method no-ops).
func (s *System) Tracer() *trace.Tracer { return s.tracer }

// Registry returns the metrics registry shared by every subsystem.
func (s *System) Registry() *metrics.Registry { return s.registry }

// Now returns the current virtual time.
func (s *System) Now() time.Duration { return s.engine.Now() }

// RunFor advances the simulation by d of virtual time.
func (s *System) RunFor(d time.Duration) { s.engine.RunFor(d) }

// RunUntil advances the simulation to absolute virtual time t.
func (s *System) RunUntil(t time.Duration) { s.engine.RunUntil(t) }

// Clock returns the wall clock the system is paced against in service
// mode, or nil in pure-simulation mode (see Options.Clock).
func (s *System) Clock() WallClock { return s.wall }

// CatchUp advances virtual time to the wall-clock time elapsed since the
// system was built, firing every event due in between, and returns the
// new virtual now. In pure-simulation mode (Options.Clock nil) it is a
// read-only no-op. CatchUp is the whole of service-mode pacing: the HTTP
// control plane calls it before every request and from a background pump
// (see internal/server), so heartbeats, judge windows, and repairs fire
// at their wall-clock instants. Like every engine entry point it is not
// goroutine-safe — service mode serializes callers externally.
func (s *System) CatchUp() time.Duration {
	if s.wall == nil {
		return s.engine.Now()
	}
	if target := s.wall.Now().Sub(s.wallStart); target > s.engine.Now() {
		s.engine.RunUntil(target)
	}
	return s.engine.Now()
}

// CreateFile adds a file of the given size (bytes) at the default
// replication, placing the first replica on node 0's rack neighborhood.
func (s *System) CreateFile(path string, size float64) error {
	_, err := s.shardFor(path).cluster.CreateFile(path, size, 0, 0)
	return err
}

// CreateFileOn adds a file with an explicit replication factor and writer
// node.
func (s *System) CreateFileOn(path string, size float64, repl, writer int) error {
	_, err := s.shardFor(path).cluster.CreateFile(path, size, repl, topology.NodeID(writer))
	return err
}

// Read streams the file to client node (asynchronously); done may be nil.
func (s *System) Read(client int, path string, done func(*ReadResult)) {
	s.shardFor(path).cluster.ReadFile(topology.NodeID(client), path, done)
}

// ReadRange streams bytes [offset, offset+length) of the file to the
// client node (asynchronously); length 0 means read to end-of-file, and
// done may be nil. Partial reads count toward block heat like whole ones
// and drive the judge's ε/M_M axes (DESIGN.md §14).
func (s *System) ReadRange(client int, path string, offset, length float64, done func(*ReadResult)) {
	s.shardFor(path).cluster.ReadRange(topology.NodeID(client), path, offset, length, done)
}

// Write streams a new file into the cluster through a real HDFS-style
// replication pipeline (unlike CreateFile, which materializes data
// instantly for setup). done may be nil.
func (s *System) Write(client int, path string, size float64, done func(*WriteResult)) {
	s.shardFor(path).cluster.WriteFile(topology.NodeID(client), path, size, 0, done)
}

// Balance runs the HDFS balancer until active nodes sit within threshold
// (fraction of capacity) of the mean utilization. On a federated facade
// the balancer fans out per shard — each block pool balances its own
// replica placement — and done (if non-nil) observes one report per
// shard.
func (s *System) Balance(threshold float64, done func(BalancerReport)) {
	s.eachShard(func(sh *System) { sh.cluster.Balance(threshold, 4, done) })
}

// Submit queues a MapReduce job.
func (s *System) Submit(j *Job) error { return s.mr.Submit(j) }

// Rename moves a file to a new path (metadata-only); ERMS's judge state
// follows the file. When the source and destination hash to different
// shards, the rename runs the journaled two-phase cross-shard move
// protocol (see StartMove) synchronously; judge heat does not follow the
// file across shards — it re-warms at the destination, like a failover.
func (s *System) Rename(src, dst string) error {
	if s.shards == nil {
		return s.cluster.Rename(src, dst)
	}
	si, di := s.router.Shard(src), s.router.Shard(dst)
	if si == di {
		return s.shards[si].cluster.Rename(src, dst)
	}
	mv, err := s.StartMove(src, dst)
	if err != nil {
		return err
	}
	return mv.Run()
}

// Delete removes a file and frees its replicas.
func (s *System) Delete(path string) error { return s.shardFor(path).cluster.DeleteFile(path) }

// Replication returns a file's current replica count.
func (s *System) Replication(path string) int { return s.shardFor(path).cluster.ReplicationOf(path) }

// StorageUsed returns total bytes stored across datanodes.
func (s *System) StorageUsed() float64 {
	var total float64
	s.eachShard(func(sh *System) { total += sh.cluster.TotalUsed() })
	return total
}

// Metrics returns storage-level counters, summed across shards on a
// federated facade.
func (s *System) Metrics() HDFSMetrics {
	var total HDFSMetrics
	s.eachShard(func(sh *System) { total = total.Add(sh.cluster.Metrics()) })
	return total
}

// Decisions returns the ERMS decision history (nil without ERMS),
// concatenated in shard order on a federated facade.
func (s *System) Decisions() []Decision {
	var all []Decision
	s.eachShard(func(sh *System) {
		if sh.manager != nil {
			all = append(all, sh.manager.History()...)
		}
	})
	return all
}

// Energy returns the standby-pool energy report (zero without ERMS). On a
// federated facade the per-shard reports are summed: each shard manages
// its block pool's standby commissioning independently on the shared
// hardware, so pooled node counts and uptimes add.
func (s *System) Energy() EnergyReport {
	var total EnergyReport
	s.eachShard(func(sh *System) {
		if sh.manager == nil {
			return
		}
		r := sh.manager.Energy()
		total.PoolNodes += r.PoolNodes
		total.PoolActiveTime += r.PoolActiveTime
		total.AllActiveTime += r.AllActiveTime
		total.SavedNodeHours += r.SavedNodeHours
	})
	return total
}

// Preload creates a trace's files at their creation times, routing each
// file to its owner shard on a federated facade.
func (s *System) Preload(t *Trace) {
	if s.shards == nil {
		workload.Preload(s.engine, s.cluster, t)
		return
	}
	for i, sh := range s.shards {
		sub := &workload.Trace{Seed: t.Seed, Duration: t.Duration}
		for _, f := range t.Files {
			if s.router.Shard(f.Path) == i {
				sub.Files = append(sub.Files, f)
			}
		}
		workload.Preload(s.engine, sh.cluster, sub)
	}
}

// ReplayJobs submits a trace's jobs to MapReduce at their trace times.
// MapReduce stays bound to shard 0 on a federated facade: jobs over files
// owned by other shards are skipped (missing input), matching the replay
// helper's hand-edited-trace tolerance. Use ReplayReads for federated
// read workloads.
func (s *System) ReplayJobs(t *Trace, onDone func(*Job)) {
	workload.ReplayMapReduce(s.engine, s.mr, t, onDone)
}

// ReplayReads replays a trace as direct whole-file client reads, routing
// each read to the file's owner shard on a federated facade.
func (s *System) ReplayReads(t *Trace, onDone func(*ReadResult)) {
	if s.shards == nil {
		workload.ReplayReads(s.engine, s.cluster, t, onDone)
		return
	}
	for i, sh := range s.shards {
		sub := &workload.Trace{Seed: t.Seed, Duration: t.Duration}
		for _, j := range t.Jobs {
			if s.router.Shard(j.File) == i {
				sub.Jobs = append(sub.Jobs, j)
			}
		}
		workload.ReplayReads(s.engine, sh.cluster, sub, onDone)
	}
}

// Stop halts ERMS background activity (judge ticker, negotiator) so the
// event queue can drain; on a federated facade every shard's manager
// stops.
func (s *System) Stop() {
	s.eachShard(func(sh *System) {
		if sh.manager != nil {
			sh.manager.Stop()
		}
	})
}
