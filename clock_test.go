package erms

import (
	"bytes"
	"os"
	"testing"
	"time"

	"erms/internal/chaos"
	"erms/internal/experiments"
	"erms/internal/hdfs"
	"erms/internal/sim"
	"erms/internal/topology"
)

// seamClock is a pass-through sim.Clock that is not a *sim.Engine: it
// proves every subsystem schedules through the Clock interface (and that
// the indirection changes nothing), not through a concrete engine it
// happens to hold.
type seamClock struct{ *sim.Engine }

// driveCluster runs a small deterministic workload — creates, reads,
// ranged reads, a delete, a node kill under heartbeats — and returns the
// cluster's durable-state digest plus a couple of behavioural counters.
func driveCluster(t *testing.T, clock sim.Clock, engine *sim.Engine) (uint64, hdfs.Metrics) {
	t.Helper()
	topo := topology.New(topology.Config{Racks: 3, NodeCount: 18})
	c := hdfs.New(clock, hdfs.Config{
		Topology: topo,
		Heartbeat: hdfs.HeartbeatConfig{
			Enabled:      true,
			Interval:     3 * time.Second,
			StaleTimeout: 30 * time.Second,
			DeadTimeout:  10 * time.Minute,
		},
	})
	for i := 0; i < 8; i++ {
		if _, err := c.CreateFile(pathN(i), 192*MB, 0, topology.NodeID(i%18)); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	for i := 0; i < 24; i++ {
		c.ReadFile(topology.NodeID(i%18), pathN(i%8), nil)
		c.ReadRange(topology.NodeID((i+1)%18), pathN(i%4), 0, 64*MB, nil)
	}
	engine.RunFor(2 * time.Minute)
	c.Kill(3)
	engine.RunFor(3 * time.Minute)
	if err := c.DeleteFile(pathN(7)); err != nil {
		t.Fatalf("delete: %v", err)
	}
	engine.RunFor(time.Minute)
	return c.StateDigest(), c.Metrics()
}

func pathN(i int) string {
	return "/seam/file-" + string(rune('a'+i))
}

// driveSystem pushes one deterministic workload through a System: the
// caller supplies advance, which moves virtual time forward by d through
// whichever path the mode under test uses (RunFor, or wall-clock Advance
// plus CatchUp in service mode).
func driveSystem(t *testing.T, sys *System, advance func(d time.Duration)) (uint64, string) {
	t.Helper()
	for i := 0; i < 6; i++ {
		if err := sys.CreateFile(pathN(i), 256*MB); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	advance(30 * time.Second)
	for round := 0; round < 6; round++ {
		for i := 0; i < 12; i++ {
			sys.Read(i%18, pathN(i%3), nil)
		}
		sys.ReadRange(2, pathN(4), 0, 96*MB, nil)
		advance(2 * time.Minute)
	}
	if err := sys.Delete(pathN(5)); err != nil {
		t.Fatalf("delete: %v", err)
	}
	advance(5 * time.Minute)
	sys.Stop()
	var prom bytes.Buffer
	if err := sys.Registry().WritePrometheus(&prom); err != nil {
		t.Fatalf("prometheus snapshot: %v", err)
	}
	return sys.StateDigest(), prom.String()
}

// TestClockSeamEquivalence is the Clock-seam gate: scheduling through the
// seam must be byte-identical to scheduling on the engine directly, a
// service-mode System paced by a simulated wall clock must be
// byte-identical to the same System driven by RunFor, and the committed
// fig3a output (generated before the seam landed, and verified unchanged
// across the refactor) must still reproduce exactly.
func TestClockSeamEquivalence(t *testing.T) {
	t.Run("hdfs-through-seam", func(t *testing.T) {
		e1 := sim.NewEngine()
		d1, m1 := driveCluster(t, e1, e1)
		e2 := sim.NewEngine()
		d2, m2 := driveCluster(t, seamClock{e2}, e2)
		if d1 != d2 {
			t.Fatalf("state digests diverged: engine-direct %x vs through-seam %x", d1, d2)
		}
		if m1 != m2 {
			t.Fatalf("metrics diverged:\n direct: %+v\n seam:   %+v", m1, m2)
		}
	})

	t.Run("storm-digest-through-seam", func(t *testing.T) {
		// The timers the seam threads — heartbeats, safe-mode monitor,
		// scrubber, replication monitor — under a seeded failure storm:
		// the storm digest through the seam must equal the direct run.
		runStorm := func(clock sim.Clock, engine *sim.Engine) (uint64, hdfs.Metrics) {
			topo := topology.New(topology.Config{Racks: 3, NodeCount: 18})
			c := hdfs.New(clock, hdfs.Config{
				Topology: topo,
				Heartbeat: hdfs.HeartbeatConfig{
					Enabled:      true,
					Interval:     3 * time.Second,
					StaleTimeout: 30 * time.Second,
					DeadTimeout:  2 * time.Minute,
				},
				SafeMode: hdfs.SafeModeConfig{Enabled: true},
			})
			for i := 0; i < 10; i++ {
				if _, err := c.CreateFile(pathN(i), 128*MB, 0, topology.NodeID(i%18)); err != nil {
					t.Fatalf("create %d: %v", i, err)
				}
			}
			var nodes []hdfs.DatanodeID
			for _, d := range c.Datanodes() {
				nodes = append(nodes, d.ID)
			}
			plan := chaos.Storm(chaos.StormConfig{
				Seed: 42, Duration: 10 * time.Minute, Nodes: nodes,
				Crashes: 3, Downtime: 90 * time.Second, MaxConcurrentDown: 2,
				Corruptions: 2, FlapNodes: 1,
			})
			plan.Schedule(engine, c)
			engine.RunFor(20 * time.Minute)
			return c.StateDigest(), c.Metrics()
		}
		e1 := sim.NewEngine()
		d1, m1 := runStorm(e1, e1)
		e2 := sim.NewEngine()
		d2, m2 := runStorm(seamClock{e2}, e2)
		if d1 != d2 {
			t.Fatalf("storm digests diverged: engine-direct %x vs through-seam %x", d1, d2)
		}
		if m1 != m2 {
			t.Fatalf("storm metrics diverged:\n direct: %+v\n seam:   %+v", m1, m2)
		}
	})

	t.Run("service-mode-sim-clock", func(t *testing.T) {
		opts := Options{
			Heartbeat: HeartbeatConfig{
				Enabled:      true,
				Interval:     3 * time.Second,
				StaleTimeout: 30 * time.Second,
				DeadTimeout:  10 * time.Minute,
			},
		}
		simSys := NewSystem(opts)
		simDigest, simProm := driveSystem(t, simSys, simSys.RunFor)

		// The service-mode twin runs on a wall clock backed by a private
		// engine: advancing the wall and calling CatchUp is exactly what
		// the HTTP control plane's pump does between requests.
		wall := sim.NewSimClock(sim.NewEngine())
		liveOpts := opts
		liveOpts.Clock = wall
		liveSys := NewSystem(liveOpts)
		liveDigest, liveProm := driveSystem(t, liveSys, func(d time.Duration) {
			wall.Advance(d)
			liveSys.CatchUp()
		})

		if simDigest != liveDigest {
			t.Fatalf("state digests diverged: sim %x vs service-mode %x", simDigest, liveDigest)
		}
		if simProm != liveProm {
			t.Fatalf("metrics snapshots diverged:\nsim:\n%s\nservice-mode:\n%s", simProm, liveProm)
		}
	})

	t.Run("fig3a-golden", func(t *testing.T) {
		if testing.Short() {
			t.Skip("fig3a render takes a few seconds")
		}
		want, err := os.ReadFile("testdata/fig3a_quick.golden")
		if err != nil {
			t.Fatalf("reading golden: %v", err)
		}
		rows := experiments.Fig3(experiments.Fig3Config{
			Seed: 1, Duration: 45 * time.Minute, Files: 16,
		})
		got := experiments.Fig3Table(rows).String() + "\n"
		if !bytes.Equal([]byte(got), want) {
			t.Fatalf("fig3a output changed from the pre-seam golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
		}
	})
}
