package erms

import (
	"bytes"
	"errors"
	"fmt"
	"strings"

	"erms/internal/auditlog"
	"erms/internal/federation"
	"erms/internal/hdfs"
	"erms/internal/sim"
)

// Namespace federation. A federated System is a facade over N namenode
// shards sharing one simulation engine: the pinned hash-of-path router
// (internal/federation) assigns every file to exactly one shard, which
// owns its block map, under-replication set, journal epoch, and judge
// instance. Datanodes are global — every shard sees the full topology and
// tracks its own block pool on each node, HDFS federation's block-pool
// model — so node lifecycle changes fan out across shards (KillNode,
// RestartNode) while namespace operations route by path.
//
// Cross-shard renames are the one operation no single shard can perform
// alone. They run a journaled two-phase move:
//
//	1. intent     marker in the source shard's journal
//	2. copy       file materialized at the destination's staging path
//	              (/.fedmove<dst>)
//	3. commit     marker in the source journal — the point of no return
//	4. publish    staging path renamed to the final path
//	5. tombstone  source file deleted, closing marker journaled
//
// A crash between any two steps leaves the pending-move table (rebuilt by
// journal replay) holding the protocol state; ResolveMoves rolls
// intent-only moves back and committed moves forward, so no file is ever
// visible in two shards or zero shards — the invariant the cross-shard
// storm suite asserts.

// MoveStagePrefix prefixes the destination-shard staging path of an
// in-flight cross-shard move: a move of /a/b stages at /.fedmove/a/b.
// Staging paths are protocol-internal — exempt from ownership checks and
// cleaned up by ResolveMoves.
const MoveStagePrefix = "/.fedmove"

// shardSnap is one shard's rolling failover base: checkpoint bytes plus
// the journal position the tail must continue from.
type shardSnap struct {
	ckpt []byte
	seq  uint64
}

// newFederated builds a facade over opts.Shards namenode shards on one
// shared engine. Each shard is a complete single-namenode System — its
// own cluster, journal, metrics registry, and (unless disabled) manager —
// built from opts with Shards stripped.
func newFederated(opts Options) *System {
	n := opts.Shards
	child := opts
	child.Shards = 0
	engine := sim.NewEngine()
	parent := &System{
		engine:    engine,
		router:    federation.New(n),
		childOpts: child,
		snaps:     make([]shardSnap, n),
	}
	for i := 0; i < n; i++ {
		sh := newBaseOn(engine, child)
		if child.EnableJournal {
			sh.cluster.SetJournal(auditlog.NewJournal())
		}
		sh.attachManager(child)
		parent.shards = append(parent.shards, sh)
	}
	parent.mr = parent.shards[0].mr
	parent.tracer = parent.shards[0].tracer
	parent.registry = parent.shards[0].registry
	return parent
}

// shardFor returns the shard owning path (the system itself when not
// federated).
func (s *System) shardFor(path string) *System {
	if s.shards == nil {
		return s
	}
	return s.shards[s.router.Shard(path)]
}

// eachShard visits every shard in index order (just the system itself
// when not federated).
func (s *System) eachShard(fn func(*System)) {
	if s.shards == nil {
		fn(s)
		return
	}
	for _, sh := range s.shards {
		fn(sh)
	}
}

// Shards returns the shard count: 1 for a classic single-namenode system,
// opts.Shards for a federated facade.
func (s *System) Shards() int {
	if s.shards == nil {
		return 1
	}
	return len(s.shards)
}

// Shard returns shard i as a full single-namenode System (the system
// itself when not federated, for any i).
func (s *System) Shard(i int) *System {
	if s.shards == nil {
		return s
	}
	return s.shards[i]
}

// Router returns the path→shard router (a single-shard router when not
// federated).
func (s *System) Router() federation.Router {
	if s.shards == nil {
		return federation.New(1)
	}
	return s.router
}

// JudgePass runs one synchronous judging pass on every shard's manager in
// shard order — the federated inner loop the sharded judge benchmark
// pins. Shards judge independently (each sees only its own block pool's
// heat), which is what lets the full pass parallelize shard-per-worker on
// the sweep engine; this sequential walk keeps the shared-engine single
// writer discipline for in-process use.
func (s *System) JudgePass() {
	s.eachShard(func(sh *System) {
		if sh.manager != nil {
			sh.manager.RunJudgeOnce()
		}
	})
}

// KillNode declares datanode id crashed in every shard: datanodes are
// global, so losing a machine loses its replicas in all block pools at
// once.
func (s *System) KillNode(id int) {
	s.eachShard(func(sh *System) { sh.cluster.Kill(hdfs.DatanodeID(id)) })
}

// RestartNode restarts datanode id in every shard (empty, as after a
// crash-wipe restart).
func (s *System) RestartNode(id int) {
	s.eachShard(func(sh *System) { sh.cluster.Restart(hdfs.DatanodeID(id)) })
}

// Move is one in-flight cross-shard rename. Run drives it to completion;
// Step advances one protocol step at a time so tests can crash a shard
// between any two steps and exercise ResolveMoves.
type Move struct {
	sys            *System
	src, dst       string
	srcIdx, dstIdx int
	size           float64
	repl           int
	step           int
}

const moveSteps = 5

// StartMove opens a cross-shard move of src to dst. The source file must
// exist, the destination must be free, and the paths must hash to
// different shards (same-shard renames are plain Rename). An encoded
// source rehydrates as a plain replicated file at the destination — the
// copy is a fresh create, and cold data re-earns its encoding there.
func (s *System) StartMove(src, dst string) (*Move, error) {
	if s.shards == nil {
		return nil, errors.New("erms: StartMove requires a federated system (Options.Shards)")
	}
	si, di := s.router.Shard(src), s.router.Shard(dst)
	if si == di {
		return nil, fmt.Errorf("erms: %q and %q both live in shard %d; use Rename", src, dst, si)
	}
	srcC, dstC := s.shards[si].cluster, s.shards[di].cluster
	f := srcC.File(src)
	if f == nil {
		return nil, fmt.Errorf("erms: no such file %q in shard %d", src, si)
	}
	if dstC.File(dst) != nil {
		return nil, fmt.Errorf("erms: destination %q already exists in shard %d", dst, di)
	}
	for _, rec := range srcC.PendingMoves() {
		if rec.Src == src {
			return nil, fmt.Errorf("erms: move of %q already in flight (-> %q)", src, rec.Dst)
		}
	}
	repl := f.TargetRepl
	if repl < 1 {
		repl = 1
	}
	return &Move{sys: s, src: src, dst: dst, srcIdx: si, dstIdx: di, size: f.Size, repl: repl}, nil
}

// Done reports whether every protocol step has run.
func (m *Move) Done() bool { return m.step >= moveSteps }

// Step runs the next protocol step. An error leaves the step not taken;
// fencing or safe-mode rejections surface here, before the protocol
// advances.
func (m *Move) Step() error {
	srcC := m.sys.shards[m.srcIdx].cluster
	dstC := m.sys.shards[m.dstIdx].cluster
	stage := MoveStagePrefix + m.dst
	switch m.step {
	case 0: // intent: the durable "this move may be in flight" fact
		if err := srcC.AppendMarker(auditlog.Entry{
			Op: auditlog.OpFedMoveIntent, Path: m.src, Dst: m.dst, Node: m.dstIdx,
		}); err != nil {
			return err
		}
	case 1: // copy: materialize at the destination's staging path
		if _, err := dstC.CreateFile(stage, m.size, m.repl, -1); err != nil {
			return err
		}
	case 2: // commit: the point of no return, journaled at the source
		if err := srcC.AppendMarker(auditlog.Entry{
			Op: auditlog.OpFedMoveCommit, Path: m.src, Dst: m.dst, Node: m.dstIdx,
		}); err != nil {
			return err
		}
	case 3: // publish: the destination shard renames staging -> final
		if err := dstC.Rename(stage, m.dst); err != nil {
			return err
		}
	case 4: // tombstone: drop the source copy and close the protocol
		if err := srcC.DeleteFile(m.src); err != nil {
			return err
		}
		if err := srcC.AppendMarker(auditlog.Entry{
			Op: auditlog.OpFedMoveTombstone, Path: m.src, Dst: m.dst, Node: m.dstIdx, Flag: true,
		}); err != nil {
			return err
		}
	default:
		return errors.New("erms: move already complete")
	}
	m.step++
	return nil
}

// Run drives the move to completion.
func (m *Move) Run() error {
	for m.step < moveSteps {
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// ResolveMoves closes every pending cross-shard move left by a crash:
// intent-only moves roll back (the staging copy, if any, is deleted and
// the source keeps the file), committed moves roll forward (publish the
// staging copy — or re-copy from the still-live source if the destination
// shard lost it — then drop the source). Orphaned staging files with no
// pending record are removed last. Returns how many moves and orphans
// were resolved. FailoverShard calls this after every promotion; it is
// idempotent and safe to run any time the system is quiescent.
func (s *System) ResolveMoves() (int, error) {
	if s.shards == nil {
		return 0, nil
	}
	resolved := 0
	for si, sh := range s.shards {
		srcC := sh.cluster
		for _, rec := range srcC.PendingMoves() {
			di := s.router.Shard(rec.Dst)
			dstC := s.shards[di].cluster
			stage := MoveStagePrefix + rec.Dst
			if !rec.Committed {
				if dstC.File(stage) != nil {
					if err := dstC.DeleteFile(stage); err != nil {
						return resolved, fmt.Errorf("erms: rollback %q -> %q: %w", rec.Src, rec.Dst, err)
					}
				}
				if err := srcC.AppendMarker(auditlog.Entry{
					Op: auditlog.OpFedMoveTombstone, Path: rec.Src, Dst: rec.Dst, Node: di,
				}); err != nil {
					return resolved, err
				}
				resolved++
				continue
			}
			if dstC.File(rec.Dst) == nil {
				if dstC.File(stage) != nil {
					if err := dstC.Rename(stage, rec.Dst); err != nil {
						return resolved, fmt.Errorf("erms: publish %q: %w", rec.Dst, err)
					}
				} else {
					f := srcC.File(rec.Src)
					if f == nil {
						return resolved, fmt.Errorf(
							"erms: committed move %q -> %q lost both copies (shard %d -> %d)",
							rec.Src, rec.Dst, si, di)
					}
					repl := f.TargetRepl
					if repl < 1 {
						repl = 1
					}
					if _, err := dstC.CreateFile(rec.Dst, f.Size, repl, -1); err != nil {
						return resolved, fmt.Errorf("erms: re-copy %q: %w", rec.Dst, err)
					}
				}
			}
			if srcC.File(rec.Src) != nil {
				if err := srcC.DeleteFile(rec.Src); err != nil {
					return resolved, fmt.Errorf("erms: drop moved source %q: %w", rec.Src, err)
				}
			}
			if err := srcC.AppendMarker(auditlog.Entry{
				Op: auditlog.OpFedMoveTombstone, Path: rec.Src, Dst: rec.Dst, Node: di, Flag: true,
			}); err != nil {
				return resolved, err
			}
			resolved++
		}
	}
	// Every pending move is now closed, so any staging path left anywhere
	// is an orphan: its intent predates the retained journal (the record
	// was never rebuilt) and its move never committed. Roll it back.
	for _, sh := range s.shards {
		for _, p := range sh.cluster.FilePaths() {
			if strings.HasPrefix(p, MoveStagePrefix+"/") {
				if err := sh.cluster.DeleteFile(p); err != nil {
					return resolved, fmt.Errorf("erms: orphan staging %q: %w", p, err)
				}
				resolved++
			}
		}
	}
	return resolved, nil
}

// SnapshotShards captures a rolling failover base — checkpoint bytes plus
// journal position — for every shard. FailoverShard promotes from the
// most recent snapshot; the journal tail from that position replays the
// rest.
func (s *System) SnapshotShards() error {
	if s.shards == nil {
		return errors.New("erms: SnapshotShards requires a federated system")
	}
	for i, sh := range s.shards {
		j := sh.cluster.Journal()
		if j == nil {
			return fmt.Errorf("erms: shard %d has no journal (EnableJournal)", i)
		}
		var buf bytes.Buffer
		if err := sh.cluster.WriteCheckpoint(&buf); err != nil {
			return fmt.Errorf("erms: snapshot shard %d: %w", i, err)
		}
		s.snaps[i] = shardSnap{ckpt: buf.Bytes(), seq: j.NextSeq()}
	}
	return nil
}

// FailoverShard crashes shard i's namenode and promotes a replacement
// built from the shard's last snapshot plus its journal tail, on the
// shared engine: restore, replay, continue the sequence numbering, bump
// the writer epoch (fencing the old primary — its late writes bounce with
// ErrFenced), and attach a fresh manager whose judge starts cold. The
// shard's in-flight transient work is lost, exactly like a real failover;
// cross-shard moves the crash interrupted are resolved before returning.
func (s *System) FailoverShard(i int) error {
	if s.shards == nil {
		return errors.New("erms: FailoverShard requires a federated system")
	}
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("erms: no shard %d (have %d)", i, len(s.shards))
	}
	snap := s.snaps[i]
	if snap.ckpt == nil {
		return fmt.Errorf("erms: no snapshot for shard %d (call SnapshotShards first)", i)
	}
	old := s.shards[i]
	oldJ := old.cluster.Journal()
	if oldJ == nil {
		return fmt.Errorf("erms: shard %d has no journal (EnableJournal)", i)
	}
	tail := oldJ.Tail(snap.seq)
	if tail == nil {
		return fmt.Errorf("erms: shard %d journal truncated past snapshot seq %d", i, snap.seq)
	}
	nb := newBaseOn(s.engine, s.childOpts)
	if err := nb.cluster.RestoreCheckpointInPlace(bytes.NewReader(snap.ckpt)); err != nil {
		return fmt.Errorf("erms: shard %d restore: %w", i, err)
	}
	if err := nb.cluster.ReplayJournal(tail); err != nil {
		return fmt.Errorf("erms: shard %d replay: %w", i, err)
	}
	nb.cluster.SetJournal(auditlog.NewJournalAt(nb.cluster.RestoredJournalSeq()))
	nb.cluster.Journal().SetEpoch(oldJ.Epoch() + 1)
	nb.cluster.AdoptEpoch()
	// Fence the deposed primary: bumping its journal's epoch past its
	// writer epoch makes every late write detectably stale.
	oldJ.BumpEpoch()
	if old.manager != nil {
		old.manager.Stop()
	}
	nb.attachManager(s.childOpts)
	s.shards[i] = nb
	if i == 0 {
		s.mr = nb.mr
		s.tracer = nb.tracer
		s.registry = nb.registry
	}
	// Refresh the shard's snapshot: the new journal starts at the replayed
	// position, so the old base's tail no longer exists here.
	var buf bytes.Buffer
	if err := nb.cluster.WriteCheckpoint(&buf); err != nil {
		return fmt.Errorf("erms: shard %d re-snapshot: %w", i, err)
	}
	s.snaps[i] = shardSnap{ckpt: buf.Bytes(), seq: nb.cluster.Journal().NextSeq()}
	_, err := s.ResolveMoves()
	return err
}
