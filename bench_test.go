// Benchmarks regenerating every figure of the ERMS paper's evaluation
// (the paper has no numbered tables; Figures 3–9 are the whole study),
// plus the DESIGN.md ablations. Each benchmark runs the corresponding
// experiment harness at quick scale and reports the figure's headline
// numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// both regenerates the study and tracks the simulator's own cost.
// EXPERIMENTS.md records the paper-vs-measured comparison.
package erms_test

import (
	"testing"
	"time"

	"erms/internal/experiments"
)

func BenchmarkFig3ReadingPerformance(b *testing.B) {
	var rows []experiments.Fig3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig3(experiments.Fig3Config{
			Seed: 1, Duration: 45 * time.Minute, Files: 16, TauMs: []float64{4},
		})
	}
	var vanTP, ermsTP float64
	for _, r := range rows {
		if r.Scheduler != "FIFO" {
			continue
		}
		if r.System == "vanilla" {
			vanTP = r.Throughput
		} else {
			ermsTP = r.Throughput
		}
	}
	b.ReportMetric(vanTP, "vanillaMBps")
	b.ReportMetric(ermsTP, "ermsMBps")
	b.ReportMetric((ermsTP/vanTP-1)*100, "gain%")
}

func BenchmarkFig3bDataLocality(b *testing.B) {
	var rows []experiments.Fig3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig3(experiments.Fig3Config{
			Seed: 1, Duration: 45 * time.Minute, Files: 16, TauMs: []float64{4},
		})
	}
	var vanLoc, ermsLoc float64
	for _, r := range rows {
		if r.Scheduler != "FIFO" {
			continue
		}
		if r.System == "vanilla" {
			vanLoc = r.Locality
		} else {
			ermsLoc = r.Locality
		}
	}
	b.ReportMetric(vanLoc, "vanillaLocality")
	b.ReportMetric(ermsLoc, "ermsLocality")
}

func BenchmarkFig4AccessCDF(b *testing.B) {
	var rows []experiments.Fig4Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig4(1, 2*time.Hour)
	}
	b.ReportMetric(float64(len(rows)), "points")
	b.ReportMetric(rows[len(rows)/2].CDF, "cdfAtMedianTime")
}

func BenchmarkFig5StorageUtilization(b *testing.B) {
	var rows []experiments.Fig5Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig5(experiments.Fig5Config{
			Seed: 3, Duration: 3 * time.Hour, Files: 16,
		})
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.VanillaGB, "finalVanillaGB")
	b.ReportMetric(last.ERMSGB, "finalErmsGB")
	b.ReportMetric(last.VanillaGB/last.ERMSGB, "storageRatio")
}

func BenchmarkFig6TestDFSIO(b *testing.B) {
	var rows []experiments.Fig6Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig6(experiments.Fig6Config{
			FileSize:     512 * experiments.MB,
			Replications: []int{1, 3, 6},
			Threads:      []int{7, 21, 35},
		})
	}
	get := func(threads, repl int) float64 {
		for _, r := range rows {
			if r.Threads == threads && r.Replication == repl {
				return r.AvgExecSec
			}
		}
		return 0
	}
	b.ReportMetric(get(35, 1), "t35r1_s")
	b.ReportMetric(get(35, 6), "t35r6_s")
	b.ReportMetric(get(35, 1)/get(35, 6), "speedupR6overR1")
}

func BenchmarkFig7IncreaseStrategies(b *testing.B) {
	var rows []experiments.Fig7Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig7(experiments.Fig7Config{
			Sizes: []float64{64 * experiments.MB, 1 * experiments.GB},
		})
	}
	big := rows[len(rows)-1]
	b.ReportMetric(big.WholeSec, "whole1GB_s")
	b.ReportMetric(big.ByOneSec, "oneByOne1GB_s")
	b.ReportMetric(big.ByOneSec/big.WholeSec, "wholeAdvantage")
}

func BenchmarkFig8MaxConcurrentAccess(b *testing.B) {
	var rows []experiments.Fig8Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig8(experiments.Fig89Config{
			FileSize: 512 * experiments.MB, MaxClients: 120,
		}, []int{2, 6})
	}
	get := func(m experiments.StorageModel, repl int) float64 {
		for _, r := range rows {
			if r.Model == m && r.Replication == repl {
				return float64(r.MaxClients)
			}
		}
		return 0
	}
	b.ReportMetric(get(experiments.AllActive, 6), "allActiveR6")
	b.ReportMetric(get(experiments.ActiveStandby, 6), "activeStandbyR6")
	b.ReportMetric(get(experiments.ActiveStandby, 6)/6, "clientsPerReplica")
}

func BenchmarkFig9ThroughputAtFixedConcurrency(b *testing.B) {
	var rows []experiments.Fig9Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig9(experiments.Fig89Config{
			FileSize: 512 * experiments.MB,
		}, 40, []int{3, 6})
	}
	for _, r := range rows {
		if r.Replication != 6 {
			continue
		}
		switch r.Model {
		case experiments.AllActive:
			b.ReportMetric(r.Throughput, "allActiveMBps")
			b.ReportMetric(r.AvgExecSec, "allActiveExec_s")
		case experiments.ActiveStandby:
			b.ReportMetric(r.Throughput, "activeStandbyMBps")
			b.ReportMetric(r.AvgExecSec, "activeStandbyExec_s")
		}
	}
}

func BenchmarkAblationPlacement(b *testing.B) {
	var rows []experiments.AblationPlacementRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AblationPlacement()
	}
	for _, r := range rows {
		if r.Policy == "erms-algorithm1" {
			b.ReportMetric(float64(r.RemovalsFromActive), "ermsActiveRemovals")
		} else {
			b.ReportMetric(float64(r.RemovalsFromActive), "defaultActiveRemovals")
		}
	}
}

func BenchmarkAblationIdleScheduling(b *testing.B) {
	var rows []experiments.AblationIdleRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AblationIdleScheduling()
	}
	for _, r := range rows {
		if r.Scheduling == "immediate" {
			b.ReportMetric(r.AvgReadSec, "immediateRead_s")
		} else {
			b.ReportMetric(r.AvgReadSec, "deferredRead_s")
		}
	}
}

func BenchmarkAblationThresholds(b *testing.B) {
	var rows []experiments.AblationThresholdRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AblationThresholds(1, 40*time.Minute, []float64{12, 4})
	}
	b.ReportMetric(rows[0].ReplicaMB, "tau12ReplMB")
	b.ReportMetric(rows[1].ReplicaMB, "tau4ReplMB")
}

func BenchmarkAblationPredictive(b *testing.B) {
	var rows []experiments.AblationPredictiveRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AblationPredictive()
	}
	for _, r := range rows {
		if r.Mode == "reactive" {
			b.ReportMetric(r.ReactionMin, "reactiveFirstIncrease_min")
		} else {
			b.ReportMetric(r.ReactionMin, "predictiveFirstIncrease_min")
		}
	}
}

func BenchmarkAblationSpeculation(b *testing.B) {
	var rows []experiments.AblationSpeculationRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AblationSpeculation()
	}
	for _, r := range rows {
		if r.Mode == "speculative" {
			b.ReportMetric(r.MakespanSec, "speculativeMakespan_s")
		} else {
			b.ReportMetric(r.MakespanSec, "plainMakespan_s")
		}
	}
}

func BenchmarkReliabilityMonteCarlo(b *testing.B) {
	var rows []experiments.ReliabilityRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Reliability(800, []int{3, 5}, 11)
	}
	for _, r := range rows {
		if r.NodesFailed != 5 {
			continue
		}
		switch r.Scheme {
		case "replication-3":
			b.ReportMetric(r.LossProb, "repl3LossAt5")
		case "rs(10,4)":
			b.ReportMetric(r.LossProb, "rsLossAt5")
		}
	}
}
