package main

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

var hotRe = regexp.MustCompile("JudgePass|AuditIngest|Insert|Rows|EachRow")

// line fabricates one test2json benchmark result line.
func line(name string, ns float64, allocs int) string {
	return fmt.Sprintf(`{"Action":"output","Package":"erms/internal/core","Test":%q,`+
		`"Output":"   22532\t     %.1f ns/op\t   20569 B/op\t     %d allocs/op\n"}`,
		name, ns, allocs)
}

func parse(t *testing.T, lines ...string) map[string]result {
	t.Helper()
	m, err := parseBench(strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseBench(t *testing.T) {
	m := parse(t,
		`{"Action":"start","Package":"erms/internal/core"}`,
		"goos: linux", // non-JSON noise between events
		line("BenchmarkJudgePass", 52425, 153),
		// Plain -bench output embeds the name (with -N suffix) in the line.
		`{"Action":"output","Output":"BenchmarkAuditIngest-8   3970390\t 328.5 ns/op\t 50 B/op\t 0 allocs/op\n"}`,
		`{"Action":"output","Test":"BenchmarkRowsEvaluation/events=10000","Output":" 134432\t 8890 ns/op\n"}`,
	)
	if len(m) != 3 {
		t.Fatalf("parsed %d benchmarks: %+v", len(m), m)
	}
	jp := m["BenchmarkJudgePass"]
	if jp.NsPerOp != 52425 || jp.AllocsPerOp != 153 || !jp.HasAllocs {
		t.Fatalf("JudgePass = %+v", jp)
	}
	if m["BenchmarkAuditIngest"].NsPerOp != 328.5 {
		t.Fatalf("suffix not stripped: %+v", m)
	}
	if sub := m["BenchmarkRowsEvaluation/events=10000"]; sub.NsPerOp != 8890 || sub.HasAllocs {
		t.Fatalf("sub-benchmark = %+v", sub)
	}
}

// TestSyntheticSlowdownFails is the acceptance fixture: a 2x ns/op
// slowdown must trip the 20% gate.
func TestSyntheticSlowdownFails(t *testing.T) {
	base := parse(t, line("BenchmarkJudgePass", 50000, 153))
	fresh := parse(t, line("BenchmarkJudgePass", 100000, 153))
	rows, failed := diff(base, fresh, 0.20, hotRe)
	if !failed {
		t.Fatal("2x slowdown did not fail the gate")
	}
	if len(rows) != 1 || !strings.Contains(rows[0].Reason, "ns/op regressed 100.0%") {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestWithinThresholdPasses(t *testing.T) {
	base := parse(t, line("BenchmarkJudgePass", 50000, 153))
	fresh := parse(t, line("BenchmarkJudgePass", 59000, 153)) // +18%
	if rows, failed := diff(base, fresh, 0.20, hotRe); failed {
		t.Fatalf("18%% slowdown should pass a 20%% gate: %+v", rows)
	}
}

func TestHotPathAllocIncreaseFails(t *testing.T) {
	base := parse(t, line("BenchmarkJudgePass", 50000, 153))
	fresh := parse(t, line("BenchmarkJudgePass", 50000, 154))
	rows, failed := diff(base, fresh, 0.20, hotRe)
	if !failed || !strings.Contains(rows[0].Reason, "allocs/op") {
		t.Fatalf("one extra alloc on the hot path must fail: %+v", rows)
	}
	// The same increase off the hot path only has the ns/op gate.
	base = parse(t, line("BenchmarkParseQuery", 4000, 47))
	fresh = parse(t, line("BenchmarkParseQuery", 4000, 60))
	if _, failed := diff(base, fresh, 0.20, hotRe); failed {
		t.Fatal("alloc growth off the hot path should not fail")
	}
}

func TestMarkdownTable(t *testing.T) {
	base := parse(t, line("BenchmarkJudgePass", 50000, 153), line("BenchmarkGone", 100, 0))
	fresh := parse(t, line("BenchmarkJudgePass", 100000, 153), line("BenchmarkAdded", 100, 0))
	rows, failed := diff(base, fresh, 0.20, hotRe)
	got := markdownTable(rows, failed)
	for _, want := range []string{
		"| benchmark | base ns/op | new ns/op | delta | status |",
		"| BenchmarkJudgePass | 50000.0 | 100000.0 | +100.0% | **FAIL**",
		"| BenchmarkGone | 100.0 | — | — | missing from new run (not failing) |",
		"| BenchmarkAdded | — | 100.0 | — | new benchmark, no baseline (not failing) |",
		"**benchmark gate failed**",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("markdown table missing %q:\n%s", want, got)
		}
	}
	if rows, ok := diff(base, base, 0.20, hotRe); ok {
		t.Fatalf("identical runs failed: %+v", rows)
	} else if got := markdownTable(rows, false); !strings.Contains(got, "benchmark gate passed") {
		t.Errorf("pass footer missing:\n%s", got)
	}
}

func TestMissingAndNewBenchmarksDoNotFail(t *testing.T) {
	base := parse(t, line("BenchmarkJudgePass", 50000, 153), line("BenchmarkGone", 100, 0))
	fresh := parse(t, line("BenchmarkJudgePass", 50000, 153), line("BenchmarkAdded", 100, 0))
	rows, failed := diff(base, fresh, 0.20, hotRe)
	if failed {
		t.Fatalf("membership changes must not fail: %+v", rows)
	}
	if len(rows) != 3 {
		t.Fatalf("expected 3 rows (pass, missing, new): %+v", rows)
	}
}
