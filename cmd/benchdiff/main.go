// Command benchdiff gates CI on the committed benchmark trajectory: it
// compares a fresh `go test -json -bench` run (BENCH_cep.new.json, as
// written by `make bench`) against the committed baseline
// (BENCH_cep.json) and exits nonzero when
//
//   - any benchmark slows down by more than -threshold (default 20%)
//     in ns/op, or
//   - a judge hot-path benchmark (-hot regex) gains even one alloc/op —
//     the CEP fast path is allocation-budgeted, so any increase is a
//     regression regardless of speed.
//
// Benchmarks present on only one side are reported but do not fail the
// run; machine-to-machine speed noise is what the generous ns/op
// threshold absorbs.
//
// Usage:
//
//	benchdiff                                # BENCH_cep.json vs BENCH_cep.new.json
//	benchdiff -baseline old.json -new new.json -threshold 0.1
//	benchdiff -markdown >> "$GITHUB_STEP_SUMMARY"   # delta table, never gates
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark's measurements.
type result struct {
	NsPerOp     float64
	AllocsPerOp float64
	HasAllocs   bool
}

// testEvent is the subset of test2json's event schema benchdiff reads.
type testEvent struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// procSuffix is the -N GOMAXPROCS suffix Go appends to benchmark names;
// stripping it keeps baselines comparable across machines.
var procSuffix = regexp.MustCompile(`-\d+$`)

// parseBench reads test2json output and returns measurements keyed by
// benchmark name (sub-benchmarks keep their /-qualified names).
func parseBench(r io.Reader) (map[string]result, error) {
	out := map[string]result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] != '{' {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			continue // interleaved non-JSON noise is not our problem
		}
		if ev.Action != "output" || !strings.Contains(ev.Output, "ns/op") {
			continue
		}
		name := ev.Test
		fields := strings.Fields(ev.Output)
		// Plain `go test -bench` lines carry the name in the output itself.
		if len(fields) > 0 && strings.HasPrefix(fields[0], "Benchmark") {
			name = fields[0]
			fields = fields[1:]
		}
		if name == "" {
			continue
		}
		name = procSuffix.ReplaceAllString(name, "")
		res := result{}
		for i := 1; i < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				continue
			}
			switch fields[i] {
			case "ns/op":
				res.NsPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
				res.HasAllocs = true
			}
		}
		if res.NsPerOp > 0 {
			out[name] = res
		}
	}
	return out, sc.Err()
}

// verdict is one row of the comparison.
type verdict struct {
	Name   string
	Reason string // empty = pass
	Delta  float64
	BaseNs float64 // 0 when the benchmark is new
	NewNs  float64 // 0 when the benchmark vanished
}

// diff compares fresh against base and returns per-benchmark verdicts
// (sorted by name) plus whether any of them fail the gate.
func diff(base, fresh map[string]result, threshold float64, hot *regexp.Regexp) ([]verdict, bool) {
	var names []string
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)
	var rows []verdict
	failed := false
	for _, n := range names {
		b := base[n]
		f, ok := fresh[n]
		if !ok {
			rows = append(rows, verdict{Name: n, Reason: "missing from new run (not failing)", BaseNs: b.NsPerOp})
			continue
		}
		delta := f.NsPerOp/b.NsPerOp - 1
		v := verdict{Name: n, Delta: delta, BaseNs: b.NsPerOp, NewNs: f.NsPerOp}
		switch {
		case delta > threshold:
			v.Reason = fmt.Sprintf("ns/op regressed %.1f%% (%.1f -> %.1f, threshold %.0f%%)",
				delta*100, b.NsPerOp, f.NsPerOp, threshold*100)
			failed = true
		case hot.MatchString(n) && b.HasAllocs && f.HasAllocs && f.AllocsPerOp > b.AllocsPerOp:
			v.Reason = fmt.Sprintf("allocs/op on judge hot path grew %g -> %g (any increase fails)",
				b.AllocsPerOp, f.AllocsPerOp)
			failed = true
		}
		rows = append(rows, v)
	}
	var extra []string
	for n := range fresh {
		if _, ok := base[n]; !ok {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, n := range extra {
		rows = append(rows, verdict{Name: n, Reason: "new benchmark, no baseline (not failing)",
			NewNs: fresh[n].NsPerOp})
	}
	return rows, failed
}

// markdownTable renders the verdicts as the GitHub-flavored table CI
// appends to the job's step summary.
func markdownTable(rows []verdict, failed bool) string {
	var b strings.Builder
	b.WriteString("### Benchmark delta (baseline vs this run)\n\n")
	b.WriteString("| benchmark | base ns/op | new ns/op | delta | status |\n")
	b.WriteString("|---|---:|---:|---:|---|\n")
	ns := func(v float64) string {
		if v == 0 {
			return "—"
		}
		return strconv.FormatFloat(v, 'f', 1, 64)
	}
	for _, r := range rows {
		status, delta := "ok", fmt.Sprintf("%+.1f%%", r.Delta*100)
		if r.Reason != "" {
			if strings.Contains(r.Reason, "not failing") {
				status, delta = r.Reason, "—"
			} else {
				status = "**FAIL** " + r.Reason
			}
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n", r.Name, ns(r.BaseNs), ns(r.NewNs), delta, status)
	}
	if failed {
		b.WriteString("\n**benchmark gate failed**\n")
	} else {
		b.WriteString("\nbenchmark gate passed\n")
	}
	return b.String()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	var (
		baseline  = flag.String("baseline", "BENCH_cep.json", "committed baseline (test2json)")
		fresh     = flag.String("new", "BENCH_cep.new.json", "fresh run to compare (test2json)")
		threshold = flag.Float64("threshold", 0.20, "max tolerated ns/op slowdown (fraction)")
		hotExpr   = flag.String("hot", "JudgePass|AuditIngest|Insert|Rows|EachRow",
			"benchmarks where any allocs/op increase fails")
		markdown = flag.Bool("markdown", false,
			"emit a GitHub-flavored Markdown delta table (for $GITHUB_STEP_SUMMARY) and always exit 0")
	)
	flag.Parse()
	hot, err := regexp.Compile(*hotExpr)
	if err != nil {
		log.Fatalf("bad -hot regex: %v", err)
	}
	load := func(path string) map[string]result {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		m, err := parseBench(f)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		if len(m) == 0 {
			log.Fatalf("%s: no benchmark results found", path)
		}
		return m
	}
	rows, failed := diff(load(*baseline), load(*fresh), *threshold, hot)
	if *markdown {
		// The summary renderer never gates: the plain run right before it
		// already decided pass/fail, this output is for human eyes.
		fmt.Print(markdownTable(rows, failed))
		return
	}
	for _, r := range rows {
		status := fmt.Sprintf("ok   %+6.1f%%", r.Delta*100)
		if r.Reason != "" {
			if strings.Contains(r.Reason, "not failing") {
				status = "note " + r.Reason
			} else {
				status = "FAIL " + r.Reason
			}
		}
		fmt.Printf("%-45s %s\n", r.Name, status)
	}
	if failed {
		log.Fatal("benchmark gate failed")
	}
	fmt.Println("benchmark gate passed")
}
