// Command dfsio is the TestDFSIO-style read benchmark from the paper's
// Figure 6: N concurrent readers stream the same file and the tool reports
// per-reader execution time and throughput under a chosen replication
// factor.
//
// Usage:
//
//	dfsio -size 1GB -threads 35 -repl 3
//	dfsio -sweep            # the full Figure-6 grid
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"erms/internal/experiments"
	"erms/internal/hdfs"
	"erms/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dfsio: ")
	var (
		sizeStr = flag.String("size", "1GB", "file size (e.g. 512MB, 2GB)")
		threads = flag.Int("threads", 7, "concurrent readers")
		repl    = flag.Int("repl", 3, "replication factor")
		sweep   = flag.Bool("sweep", false, "run the full Figure-6 grid instead of one point")
	)
	flag.Parse()

	if *sweep {
		rows := experiments.Fig6(experiments.Fig6Config{})
		fmt.Println(experiments.Fig6Table(rows))
		return
	}
	size, err := parseSize(*sizeStr)
	if err != nil {
		log.Fatal(err)
	}
	tb := experiments.NewVanilla(18)
	if _, err := tb.Cluster.CreateFile("/dfsio", size, *repl, 0); err != nil {
		log.Fatal(err)
	}
	var exec, tput metrics.Sample
	for i := 0; i < *threads; i++ {
		tb.Cluster.ReadFileAt(hdfs.ExternalClient, "/dfsio", i, func(r *hdfs.ReadResult) {
			if r.Err != nil {
				log.Fatal(r.Err)
			}
			exec.Add(r.Duration().Seconds())
			tput.Add(r.ThroughputMBps())
		})
	}
	tb.Engine.Run()
	fmt.Printf("file size          %s\n", *sizeStr)
	fmt.Printf("replication        %d\n", *repl)
	fmt.Printf("concurrent readers %d\n", *threads)
	fmt.Printf("avg execution time %.2f s (min %.2f, max %.2f)\n",
		exec.Mean(), exec.Min(), exec.Max())
	fmt.Printf("avg throughput     %.2f MB/s per reader (min %.2f)\n",
		tput.Mean(), tput.Min())
}

func parseSize(s string) (float64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "GB"):
		mult = experiments.GB
		s = strings.TrimSuffix(s, "GB")
	case strings.HasSuffix(s, "MB"):
		mult = experiments.MB
		s = strings.TrimSuffix(s, "MB")
	default:
		return 0, fmt.Errorf("size %q needs an MB or GB suffix", s)
	}
	var v float64
	if _, err := fmt.Sscanf(s, "%g", &v); err != nil || v <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}
