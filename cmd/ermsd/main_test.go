package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestErmsdSmoke is the real-clock end-to-end check: build ermsd, start it
// on an ephemeral port, post an op batch over real HTTP, scrape /metrics
// and /v1/status while the pacer pump advances virtual time against the
// actual wall clock, then shut the daemon down. Everything else in the
// suite runs on simulated clocks; this is the one test that proves the
// service boots and breathes in real time.
func TestErmsdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the daemon")
	}
	bin := filepath.Join(t.TempDir(), "ermsd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building ermsd: %v", err)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-journal")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting ermsd: %v", err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	// The daemon logs its bound address; ephemeral ports make parallel CI
	// safe.
	addrRe := regexp.MustCompile(`serving on http://([0-9.:]+)`)
	var base string
	sc := bufio.NewScanner(stderr)
	deadline := time.After(30 * time.Second)
	lineCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			select {
			case lineCh <- sc.Text():
			default:
			}
		}
	}()
	for base == "" {
		select {
		case line := <-lineCh:
			if m := addrRe.FindStringSubmatch(line); m != nil {
				base = "http://" + m[1]
			}
		case <-deadline:
			t.Fatal("ermsd never announced its address")
		}
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			b.WriteString(sc.Text())
			b.WriteByte('\n')
		}
		return resp.StatusCode, b.String()
	}

	// Ingest a small batch.
	batch := `{"ops":[
		{"op":"create","path":"/smoke/a","size_mb":192},
		{"op":"create","path":"/smoke/b","size_mb":64},
		{"op":"read","path":"/smoke/a","client":3}]}`
	resp, err := http.Post(base+"/v1/ops", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatalf("POST /v1/ops: %v", err)
	}
	var ops struct {
		Accepted int `json:"accepted"`
		Failed   int `json:"failed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ops); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ops.Accepted != 3 || ops.Failed != 0 {
		t.Fatalf("ops: code %d, %+v", resp.StatusCode, ops)
	}

	// Give the pump a moment of real time, then confirm virtual time moved
	// and the namespace holds the files.
	var status struct {
		Mode       string  `json:"mode"`
		NowSeconds float64 `json:"now_seconds"`
		Files      int     `json:"files"`
	}
	okAt := time.Now().Add(10 * time.Second)
	for {
		code, body := get("/v1/status")
		if code != http.StatusOK {
			t.Fatalf("status: %d %s", code, body)
		}
		if err := json.Unmarshal([]byte(body), &status); err != nil {
			t.Fatal(err)
		}
		if status.Files == 2 && status.NowSeconds > 0 {
			break
		}
		if time.Now().After(okAt) {
			t.Fatalf("daemon never settled: %+v", status)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if status.Mode != "service" {
		t.Fatalf("mode: %q", status.Mode)
	}

	// Scrape Prometheus text.
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{"hdfs_files 2", "# TYPE"} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}

	// Drain, confirm ingestion stops, then stop the daemon's activity.
	for _, step := range []struct {
		path string
		want string
	}{
		{"/v1/drain", `"state": "draining"`},
		{"/v1/stop", `"state": "stopped"`},
	} {
		resp, err := http.Post(base+step.path, "application/json", nil)
		if err != nil {
			t.Fatalf("POST %s: %v", step.path, err)
		}
		var b strings.Builder
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			b.WriteString(sc.Text())
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.Contains(b.String(), step.want) {
			t.Fatalf("%s: code %d body %s", step.path, resp.StatusCode, b.String())
		}
	}
}
