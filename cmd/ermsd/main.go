// Command ermsd runs an ERMS deployment as a long-lived service: a System
// in service mode (paced against the real wall clock) behind the HTTP
// control plane from internal/server.
//
// Usage:
//
//	ermsd                                 # defaults: :7730, paper testbed shape
//	ermsd -addr 127.0.0.1:9900 -shards 4  # federated namespace on a custom port
//	ermsd -trace -journal                 # enable /v1/trace and journal fencing
//
// Drive it with curl (see OPERATIONS.md for the full runbook):
//
//	curl -s localhost:7730/v1/status | jq .
//	curl -s -XPOST localhost:7730/v1/ops -d '{"ops":[{"op":"create","path":"/a","size_mb":192}]}'
//	curl -s -XPOST 'localhost:7730/v1/ops?format=trace' --data-binary @trace.json
//	curl -s localhost:7730/metrics
//	curl -s -XPOST localhost:7730/v1/drain
//
// The virtual cluster's heartbeats, judge windows, and repairs fire on
// real-time schedule: a pacer pump keeps the engine caught up with the
// wall clock between requests, so scraping /metrics every 15s watches the
// control loop actually run.
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"time"

	"erms"
	"erms/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ermsd: ")
	var (
		addr    = flag.String("addr", ":7730", "HTTP listen address")
		racks   = flag.Int("racks", 0, "racks in the cluster (0 = default 3)")
		nodes   = flag.Int("nodes", 0, "datanode count (0 = default 18)")
		shards  = flag.Int("shards", 0, "federate the namespace across N namenode shards (0 = classic single namenode)")
		tauM    = flag.Float64("taum", 0, "hot threshold τ_M (0 = paper default)")
		trace   = flag.Bool("trace", false, "record control-loop spans for /v1/trace")
		journal = flag.Bool("journal", false, "attach the write-ahead journal (epoch fencing, failover)")
		noERMS  = flag.Bool("no-erms", false, "run the vanilla triplicating baseline without the ERMS manager")
		hb      = flag.Bool("heartbeat", true, "run the heartbeat failure detector")
	)
	flag.Parse()

	opts := erms.Options{
		Racks:         *racks,
		Nodes:         *nodes,
		Shards:        *shards,
		EnableTrace:   *trace,
		EnableJournal: *journal,
		DisableERMS:   *noERMS,
		Clock:         erms.RealClock(),
	}
	if *tauM > 0 {
		th := erms.DefaultThresholds()
		th.TauM = *tauM
		opts.Thresholds = th
	}
	if *hb {
		opts.Heartbeat = erms.HeartbeatConfig{
			Enabled:      true,
			Interval:     3 * time.Second,
			StaleTimeout: 30 * time.Second,
			DeadTimeout:  10 * time.Minute,
		}
	}

	sys := erms.NewSystem(opts)
	srv := server.New(sys)
	if err := srv.StartPump(); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on http://%s (POST /v1/ops, GET /v1/status, GET /metrics)", ln.Addr())
	log.Fatal(http.Serve(ln, srv.Handler()))
}
