package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGenerateDeterministic: the same seed and flags must produce
// byte-identical output, run twice in the same process, for both formats.
// This is the golden gate for trace generation — any hidden global state
// (map iteration, shared rand) would show up here.
func TestGenerateDeterministic(t *testing.T) {
	cases := [][]string{
		{"-seed", "7", "-duration", "1h", "-files", "24", "-format", "json"},
		{"-seed", "7", "-duration", "1h", "-files", "24", "-format", "csv"},
		{"-seed", "3", "-duration", "30m", "-files", "10", "-interarrival", "10s", "-halflife", "45m", "-format", "json"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			var a, b bytes.Buffer
			if err := run(args, &a); err != nil {
				t.Fatalf("first run: %v", err)
			}
			if err := run(args, &b); err != nil {
				t.Fatalf("second run: %v", err)
			}
			if a.Len() == 0 {
				t.Fatal("no output produced")
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("same seed+flags produced different output (%d vs %d bytes)", a.Len(), b.Len())
			}
		})
	}
}

// TestInspectRoundTrip: generating to a file and inspecting it must work
// for both formats, and report the generated catalog size.
func TestInspectRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, format := range []string{"json", "csv"} {
		path := filepath.Join(dir, "trace."+format)
		var out bytes.Buffer
		if err := run([]string{"-seed", "5", "-duration", "1h", "-files", "12", "-format", format}, &out); err != nil {
			t.Fatalf("generate %s: %v", format, err)
		}
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		var sum bytes.Buffer
		if err := run([]string{"-inspect", path}, &sum); err != nil {
			t.Fatalf("inspect %s: %v", format, err)
		}
		if !strings.Contains(sum.String(), "files     12") {
			t.Fatalf("inspect of %s did not report the 12-file catalog:\n%s", format, sum.String())
		}
	}
}

func TestUnknownFormat(t *testing.T) {
	if err := run([]string{"-format", "xml"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown format accepted")
	}
}
