// Command swimgen synthesizes SWIM-style heavy-tailed workload traces
// (the statistical shape of the Facebook production trace the ERMS paper
// replays) and inspects existing traces.
//
// Usage:
//
//	swimgen -duration 2h -files 40 -seed 7 > trace.json
//	swimgen -inspect trace.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"erms/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swimgen: ")
	var (
		seed     = flag.Int64("seed", 1, "random seed")
		duration = flag.Duration("duration", 2*time.Hour, "trace length")
		files    = flag.Int("files", 40, "file catalog size")
		interarr = flag.Duration("interarrival", 20*time.Second, "mean job inter-arrival")
		halfLife = flag.Duration("halflife", 90*time.Minute, "popularity half-life")
		format   = flag.String("format", "json", "output format: json or csv")
		inspect  = flag.String("inspect", "", "summarize an existing trace file (.json or .csv) instead of generating")
	)
	flag.Parse()

	if *inspect != "" {
		tr, err := loadTrace(*inspect)
		if err != nil {
			log.Fatal(err)
		}
		summarize(tr)
		return
	}

	tr := workload.Synthesize(workload.Config{
		Seed:               *seed,
		Duration:           *duration,
		NumFiles:           *files,
		MeanInterarrival:   *interarr,
		PopularityHalfLife: *halfLife,
	})
	var err error
	switch *format {
	case "json":
		err = tr.WriteJSON(os.Stdout)
	case "csv":
		err = tr.WriteCSV(os.Stdout)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func loadTrace(path string) (*workload.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return workload.ReadCSV(f)
	}
	return workload.ReadJSON(f)
}

func summarize(tr *workload.Trace) {
	fmt.Printf("seed      %d\n", tr.Seed)
	fmt.Printf("duration  %v\n", tr.Duration)
	fmt.Printf("files     %d\n", len(tr.Files))
	fmt.Printf("jobs      %d\n", len(tr.Jobs))
	fmt.Printf("skew      %.3f (Gini over per-file access counts)\n", tr.GiniSkew())
	fmt.Println("\ntop files by accesses:")
	counts := tr.AccessCounts()
	for i, c := range counts {
		if i == 10 {
			break
		}
		fmt.Printf("  %-16s %d\n", c.Path, c.Count)
	}
}
