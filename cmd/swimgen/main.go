// Command swimgen synthesizes SWIM-style heavy-tailed workload traces
// (the statistical shape of the Facebook production trace the ERMS paper
// replays) and inspects existing traces.
//
// Usage:
//
//	swimgen -duration 2h -files 40 -seed 7 > trace.json
//	swimgen -inspect trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"erms/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swimgen: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the whole command: parse args, generate or inspect, write to
// stdout. Kept separate from main so tests can drive it in-process and
// assert that equal flags produce byte-identical output.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("swimgen", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 1, "random seed")
		duration = fs.Duration("duration", 2*time.Hour, "trace length")
		files    = fs.Int("files", 40, "file catalog size")
		interarr = fs.Duration("interarrival", 20*time.Second, "mean job inter-arrival")
		halfLife = fs.Duration("halflife", 90*time.Minute, "popularity half-life")
		format   = fs.String("format", "json", "output format: json or csv")
		inspect  = fs.String("inspect", "", "summarize an existing trace file (.json or .csv) instead of generating")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *inspect != "" {
		tr, err := loadTrace(*inspect)
		if err != nil {
			return err
		}
		summarize(tr, stdout)
		return nil
	}

	tr := workload.Synthesize(workload.Config{
		Seed:               *seed,
		Duration:           *duration,
		NumFiles:           *files,
		MeanInterarrival:   *interarr,
		PopularityHalfLife: *halfLife,
	})
	switch *format {
	case "json":
		return tr.WriteJSON(stdout)
	case "csv":
		return tr.WriteCSV(stdout)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

func loadTrace(path string) (*workload.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return workload.ReadCSV(f)
	}
	return workload.ReadJSON(f)
}

func summarize(tr *workload.Trace, w io.Writer) {
	fmt.Fprintf(w, "seed      %d\n", tr.Seed)
	fmt.Fprintf(w, "duration  %v\n", tr.Duration)
	fmt.Fprintf(w, "files     %d\n", len(tr.Files))
	fmt.Fprintf(w, "jobs      %d\n", len(tr.Jobs))
	fmt.Fprintf(w, "skew      %.3f (Gini over per-file access counts)\n", tr.GiniSkew())
	fmt.Fprintln(w, "\ntop files by accesses:")
	counts := tr.AccessCounts()
	for i, c := range counts {
		if i == 10 {
			break
		}
		fmt.Fprintf(w, "  %-16s %d\n", c.Path, c.Count)
	}
}
