// Command figures regenerates the data behind every figure in the ERMS
// paper's evaluation (Figures 3–9), plus the ablations, the reliability
// study, and the threshold-tuning sweep documented in DESIGN.md. Output
// is plain aligned text, one table per figure.
//
// Figures are independent deterministic simulations, so they fan out
// across cores on the sweep engine (internal/sweep): `-parallel N` picks
// the worker count (default: one per CPU) and the merged output is
// byte-identical at any setting — timing lives behind `-timing`, off the
// byte-stable stream.
//
// Usage:
//
//	figures -fig all                # everything, quick scale, all cores
//	figures -fig all -parallel 1    # same bytes, one core
//	figures -fig 3a -full           # one figure at paper scale
//	figures -fig sweep              # judge threshold grid -> winner table
//	figures -fig scenarios          # production-shaped scenario suite, vanilla vs ERMS
//	figures -fig 8 -seed 7
//	figures -runtime-table          # serial-vs-parallel Markdown table
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"erms/internal/experiments"
	"erms/internal/metrics"
	"erms/internal/sweep"
)

// figOpts carries the flag values the figure bodies close over.
type figOpts struct {
	seed       int64
	full       bool
	plot       bool
	parallel   int    // inner fan-out for figures that sweep a grid themselves
	cores      int    // runtime.NumCPU at startup; tests pin it
	timing     bool   // append non-byte-stable timing tables to figure output
	scaleCache string // checkpoint cache dir for the scale sweep ("" = no cache)
}

// task adapts a figure body to a sweep cell. Bodies print nothing: they
// return their table, and main prints the merged result in submission
// order so output bytes never depend on scheduling.
func task(name string, f func() (string, error)) sweep.Task {
	return sweep.Task{Name: name, Run: func(context.Context) (string, error) { return f() }}
}

// sprintln renders a table exactly as the old fmt.Println did (String()
// plus a trailing newline).
func sprintln(v fmt.Stringer) string { return fmt.Sprintln(v) }

// buildTasks expands the -fig selection into sweep tasks plus the
// trailing notes (e.g. the explicit scale exclusion) printed after the
// merged output.
func buildTasks(fig string, o figOpts) (tasks []sweep.Task, notes []string) {
	want := func(name string) bool {
		return fig == "all" || strings.EqualFold(fig, name) ||
			(len(name) > 1 && strings.EqualFold(fig, name[:1])) // "3" matches 3a+3b
	}

	if want("3a") || want("3b") {
		dur := 45 * time.Minute
		files := 16
		if o.full {
			dur, files = 2*time.Hour, 30
		}
		tasks = append(tasks, task("3", func() (string, error) {
			rows := experiments.Fig3(experiments.Fig3Config{Seed: o.seed, Duration: dur, Files: files})
			return sprintln(experiments.Fig3Table(rows)), nil
		}))
	}
	if want("4") {
		dur := 2 * time.Hour
		if o.full {
			dur = 6 * time.Hour
		}
		tasks = append(tasks, task("4", func() (string, error) {
			rows := experiments.Fig4(o.seed, dur)
			out := sprintln(experiments.Fig4Table(rows))
			if o.plot {
				s := metrics.Series{Name: "cdf", Mark: '*'}
				for _, r := range rows {
					s.Xs = append(s.Xs, r.Hours)
					s.Ys = append(s.Ys, r.CDF)
				}
				ch := metrics.Chart{Title: "Figure 4 (shape)", XLabel: "hours",
					YLabel: "CDF", Series: []metrics.Series{s}}
				out += ch.Render() + "\n"
			}
			return out, nil
		}))
	}
	if want("5") {
		cfg := experiments.Fig5Config{Seed: o.seed, Duration: 3 * time.Hour, Files: 16}
		if o.full {
			cfg.Duration, cfg.Files = 6*time.Hour, 24
		}
		tasks = append(tasks, task("5", func() (string, error) {
			rows := experiments.Fig5(cfg)
			out := sprintln(experiments.Fig5Table(rows))
			if o.plot {
				van := metrics.Series{Name: "vanilla", Mark: 'v'}
				er := metrics.Series{Name: "erms", Mark: 'e'}
				for _, r := range rows {
					van.Xs = append(van.Xs, r.Hours)
					van.Ys = append(van.Ys, r.VanillaGB)
					er.Xs = append(er.Xs, r.Hours)
					er.Ys = append(er.Ys, r.ERMSGB)
				}
				ch := metrics.Chart{Title: "Figure 5 (shape)", XLabel: "hours",
					YLabel: "GB", Series: []metrics.Series{van, er}}
				out += ch.Render() + "\n"
			}
			return out, nil
		}))
	}
	if want("6") {
		cfg := experiments.Fig6Config{}
		if !o.full {
			cfg.FileSize = 512 * experiments.MB
		}
		tasks = append(tasks, task("6", func() (string, error) {
			return sprintln(experiments.Fig6Table(experiments.Fig6(cfg))), nil
		}))
	}
	if want("7") {
		cfg := experiments.Fig7Config{}
		if !o.full {
			cfg.Sizes = []float64{64 * experiments.MB, 256 * experiments.MB,
				1 * experiments.GB, 4 * experiments.GB}
		}
		tasks = append(tasks, task("7", func() (string, error) {
			return sprintln(experiments.Fig7Table(experiments.Fig7(cfg))), nil
		}))
	}
	if want("8") {
		cfg := experiments.Fig89Config{}
		repls := []int{2, 4, 6, 8}
		if o.full {
			repls = []int{1, 2, 3, 4, 5, 6, 7, 8}
		} else {
			cfg.FileSize = 512 * experiments.MB
		}
		tasks = append(tasks, task("8", func() (string, error) {
			return sprintln(experiments.Fig8Table(experiments.Fig8(cfg, repls))), nil
		}))
	}
	if want("9") {
		cfg := experiments.Fig89Config{}
		clients := 70
		repls := []int{2, 3, 4, 5, 6, 7, 8}
		if !o.full {
			cfg.FileSize = 512 * experiments.MB
			clients = 40
			repls = []int{2, 4, 6, 8}
		}
		tasks = append(tasks, task("9", func() (string, error) {
			return sprintln(experiments.Fig9Table(experiments.Fig9(cfg, clients, repls))), nil
		}))
	}
	if want("ablations") {
		// Five independent studies — separate cells so they overlap on the
		// pool, merged back in this order.
		tasks = append(tasks,
			task("ablation:placement", func() (string, error) {
				return sprintln(experiments.AblationPlacementTable(experiments.AblationPlacement())), nil
			}),
			task("ablation:idle", func() (string, error) {
				return sprintln(experiments.AblationIdleTable(experiments.AblationIdleScheduling())), nil
			}))
		dur := 40 * time.Minute
		if o.full {
			dur = 90 * time.Minute
		}
		tasks = append(tasks,
			task("ablation:thresholds", func() (string, error) {
				return sprintln(experiments.AblationThresholdsTable(
					experiments.AblationThresholds(o.seed, dur, nil))), nil
			}),
			task("ablation:predictive", func() (string, error) {
				return sprintln(experiments.AblationPredictiveTable(experiments.AblationPredictive())), nil
			}),
			task("ablation:speculation", func() (string, error) {
				return sprintln(experiments.AblationSpeculationTable(experiments.AblationSpeculation())), nil
			}))
	}
	if want("reliability") {
		trials := 2000
		if o.full {
			trials = 20000
		}
		tasks = append(tasks, task("reliability", func() (string, error) {
			return sprintln(experiments.ReliabilityTable(experiments.Reliability(trials, nil, o.seed))), nil
		}))
	}
	if want("failover") {
		cfg := experiments.FailoverConfig{Seed: o.seed}
		if o.full {
			cfg.Duration = 2 * time.Hour
			cfg.Crashes = 8
		}
		tasks = append(tasks, task("failover", func() (string, error) {
			rows := experiments.FailoverDemo(cfg)
			out := sprintln(experiments.FailoverTable(rows))
			if o.timing {
				out += sprintln(experiments.FailoverTimingTable(rows))
			}
			return out, nil
		}))
	}
	if want("degrade") {
		cfg := experiments.DegradeConfig{Seed: o.seed}
		if o.full {
			cfg.Files = 48
			cfg.Caps = []int{-1, 32, 16, 8, 4, 2}
		}
		tasks = append(tasks, task("degrade", func() (string, error) {
			return sprintln(experiments.DegradeTable(experiments.DegradeDemo(cfg))), nil
		}))
	}
	if want("durability") {
		cfg := experiments.DurabilityConfig{Seed: o.seed}
		if o.full {
			cfg.Duration = 6 * time.Hour
			cfg.Crashes = 12
			cfg.Partitions = 4
			cfg.Corruptions = 20
		}
		tasks = append(tasks, task("durability", func() (string, error) {
			return sprintln(experiments.DurabilityTable(experiments.Durability(cfg))), nil
		}))
	}
	if want("sweep") {
		cfg := experiments.ThresholdSweepConfig{Seeds: []int64{o.seed}, Parallel: o.parallel}
		if o.full {
			cfg.Duration = 45 * time.Minute
			cfg.Files = 16
			cfg.Seeds = []int64{o.seed, o.seed + 1, o.seed + 2}
		}
		tasks = append(tasks, task("sweep", func() (string, error) {
			rows, _, err := experiments.ThresholdSweep(context.Background(), cfg)
			if err != nil {
				return "", err
			}
			return sprintln(experiments.ThresholdSweepTable(cfg, rows)), nil
		}))
	}
	// The scale sweep joins `-fig all` on multi-core machines: the
	// checkpoint cache turns its dominant cost — building the 1,000-node /
	// 1M-file namespace — into a sub-second restore, and the fan-out
	// absorbs the rest. Single-core runs still get it by name.
	if strings.EqualFold(fig, "scale") || (fig == "all" && o.cores > 1) {
		cfg := experiments.ScaleConfig{Seed: o.seed, CacheDir: o.scaleCache}
		if o.full {
			cfg.Reads = 50000
		}
		tasks = append(tasks, task("scale", func() (string, error) {
			rows := experiments.ScaleDemo(cfg)
			out := sprintln(experiments.ScaleTable(rows))
			if o.timing {
				out += sprintln(experiments.ScaleTimingTable(rows))
			}
			return out, nil
		}))
	} else if fig == "all" {
		notes = append(notes,
			"scale: skipped (single core; the 1,000-datanode / 1M-file point would dominate — run with -fig scale)")
	}
	if want("scenarios") {
		cfg := experiments.ScenarioConfig{Seed: o.seed, Parallel: o.parallel}
		if o.full {
			cfg.Duration = 2 * time.Hour
		}
		tasks = append(tasks, task("scenarios", func() (string, error) {
			rows, results, err := experiments.Scenarios(context.Background(), cfg)
			if err != nil {
				return "", err
			}
			out := sprintln(experiments.ScenarioTable(cfg, rows))
			if o.timing {
				out += sprintln(sweep.TimingTable(results))
			}
			return out, nil
		}))
	}
	if want("trace") {
		tasks = append(tasks, task("trace", func() (string, error) {
			res := experiments.TraceDemo()
			t := &metrics.Table{
				Title:   "Trace demo: control-loop spans for one hot file (burst -> judge -> condor -> transfers -> drain)",
				Columns: []string{"span", "count", "total_s"},
			}
			for _, s := range res.Tracer.Summarize() {
				t.AddRowValues(s.Name, s.Count, s.Total.Seconds())
			}
			return sprintln(t) +
				"export the full tree with `ermsctl trace -o trace.json` and load it in https://ui.perfetto.dev\n", nil
		}))
	}
	return tasks, notes
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3a, 3b, 4, 5, 6, 7, 8, 9, ablations, reliability, failover, durability, degrade, sweep, scenarios, trace, scale, all")
	seed := flag.Int64("seed", 1, "workload seed")
	full := flag.Bool("full", false, "paper-scale runs (slower) instead of quick scale")
	plot := flag.Bool("plot", false, "also draw ASCII charts for the series figures (4, 5)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "sweep workers for the figure fan-out (1 = serial; merged output is identical either way)")
	timing := flag.Bool("timing", false, "append the per-figure timing tables (wall clock and heap — not byte-stable)")
	runtimeTable := flag.Bool("runtime-table", false, "time every selected figure serial vs parallel and print a Markdown runtime table (see EXPERIMENTS.md)")
	scaleCache := flag.String("scale-cache", filepath.Join(os.TempDir(), "erms-scale-cache"),
		"checkpoint cache dir for the scale sweep's namespaces (empty = rebuild every run)")
	flag.Parse()

	opts := figOpts{seed: *seed, full: *full, plot: *plot, parallel: *parallel,
		cores: runtime.NumCPU(), timing: *timing, scaleCache: *scaleCache}
	tasks, notes := buildTasks(*fig, opts)
	if len(tasks) == 0 {
		fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}

	if *runtimeTable {
		fmt.Print(runtimeTableMarkdown(*fig, opts))
		return
	}

	results, err := sweep.Run(context.Background(), sweep.Options{Parallel: *parallel}, tasks)
	fmt.Print(sweep.Merged(results))
	for _, n := range notes {
		fmt.Println(n)
	}
	if *timing {
		fmt.Println(sweep.TimingTable(results))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
}

// runtimeTableMarkdown runs the selection twice — serially, then on the
// worker pool — and renders the per-figure wall clocks as the Markdown
// table EXPERIMENTS.md embeds and CI publishes. It also cross-checks the
// determinism contract: both runs' merged outputs must be byte-identical.
func runtimeTableMarkdown(fig string, o figOpts) string {
	o.timing = false // timing tables are not byte-stable; keep them out of the identity check
	serialOpts := o
	serialOpts.parallel = 1 // inner grids run serial too, so the serial column is honest
	serialTasks, _ := buildTasks(fig, serialOpts)
	parTasks, _ := buildTasks(fig, o)

	t0 := time.Now()
	serial, serr := sweep.Run(context.Background(), sweep.Options{Parallel: 1}, serialTasks)
	serialWall := time.Since(t0)
	t1 := time.Now()
	par, perr := sweep.Run(context.Background(), sweep.Options{Parallel: o.parallel}, parTasks)
	parWall := time.Since(t1)

	var b strings.Builder
	fmt.Fprintf(&b, "| figure | serial_s | parallel_s |\n|---|---:|---:|\n")
	var sum, crit time.Duration
	for i, s := range serial {
		p := par[i]
		fmt.Fprintf(&b, "| %s | %.2f | %.2f |\n", s.Name, s.Wall.Seconds(), p.Wall.Seconds())
		sum += s.Wall
		if s.Wall > crit {
			crit = s.Wall
		}
	}
	fmt.Fprintf(&b, "| **total wall** | **%.2f** | **%.2f** |\n\n", serialWall.Seconds(), parWall.Seconds())
	speedup := serialWall.Seconds() / parWall.Seconds()
	ideal := sum.Seconds() / crit.Seconds()
	fmt.Fprintf(&b, "- workers: %d (`-parallel`), cores: %d (`runtime.NumCPU`)\n", o.parallel, runtime.NumCPU())
	fmt.Fprintf(&b, "- measured speedup: %.2fx; figure-level critical path %.2f s (slowest figure) bounds the figure fan-out at %.2fx on enough cores — figures that sweep internal grids (sweep) split further, so the true bound is higher\n",
		speedup, crit.Seconds(), ideal)
	identical := sweep.Merged(serial) == sweep.Merged(par) && serr == nil && perr == nil
	fmt.Fprintf(&b, "- merged output byte-identical across worker counts: %v\n", identical)
	return b.String()
}
