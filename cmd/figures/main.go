// Command figures regenerates the data behind every figure in the ERMS
// paper's evaluation (Figures 3–9), plus the ablations and the reliability
// study documented in DESIGN.md. Output is plain aligned text, one table
// per figure.
//
// Usage:
//
//	figures -fig all            # everything, quick scale
//	figures -fig 3a -full       # one figure at paper scale
//	figures -fig 8 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"erms/internal/experiments"
	"erms/internal/metrics"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3a, 3b, 4, 5, 6, 7, 8, 9, ablations, reliability, durability, trace, scale, all")
	seed := flag.Int64("seed", 1, "workload seed")
	full := flag.Bool("full", false, "paper-scale runs (slower) instead of quick scale")
	plot := flag.Bool("plot", false, "also draw ASCII charts for the series figures (4, 5)")
	flag.Parse()

	want := func(name string) bool {
		return *fig == "all" || strings.EqualFold(*fig, name) ||
			(len(name) > 1 && strings.EqualFold(*fig, name[:1])) // "3" matches 3a+3b
	}
	ran := false

	if want("3a") || want("3b") {
		ran = true
		dur := 45 * time.Minute
		files := 16
		if *full {
			dur, files = 2*time.Hour, 30
		}
		rows := experiments.Fig3(experiments.Fig3Config{Seed: *seed, Duration: dur, Files: files})
		fmt.Println(experiments.Fig3Table(rows))
	}
	if want("4") {
		ran = true
		dur := 2 * time.Hour
		if *full {
			dur = 6 * time.Hour
		}
		rows := experiments.Fig4(*seed, dur)
		fmt.Println(experiments.Fig4Table(rows))
		if *plot {
			s := metrics.Series{Name: "cdf", Mark: '*'}
			for _, r := range rows {
				s.Xs = append(s.Xs, r.Hours)
				s.Ys = append(s.Ys, r.CDF)
			}
			ch := metrics.Chart{Title: "Figure 4 (shape)", XLabel: "hours",
				YLabel: "CDF", Series: []metrics.Series{s}}
			fmt.Println(ch.Render())
		}
	}
	if want("5") {
		ran = true
		cfg := experiments.Fig5Config{Seed: *seed, Duration: 3 * time.Hour, Files: 16}
		if *full {
			cfg.Duration, cfg.Files = 6*time.Hour, 24
		}
		rows := experiments.Fig5(cfg)
		fmt.Println(experiments.Fig5Table(rows))
		if *plot {
			van := metrics.Series{Name: "vanilla", Mark: 'v'}
			er := metrics.Series{Name: "erms", Mark: 'e'}
			for _, r := range rows {
				van.Xs = append(van.Xs, r.Hours)
				van.Ys = append(van.Ys, r.VanillaGB)
				er.Xs = append(er.Xs, r.Hours)
				er.Ys = append(er.Ys, r.ERMSGB)
			}
			ch := metrics.Chart{Title: "Figure 5 (shape)", XLabel: "hours",
				YLabel: "GB", Series: []metrics.Series{van, er}}
			fmt.Println(ch.Render())
		}
	}
	if want("6") {
		ran = true
		cfg := experiments.Fig6Config{}
		if !*full {
			cfg.FileSize = 512 * experiments.MB
		}
		fmt.Println(experiments.Fig6Table(experiments.Fig6(cfg)))
	}
	if want("7") {
		ran = true
		cfg := experiments.Fig7Config{}
		if !*full {
			cfg.Sizes = []float64{64 * experiments.MB, 256 * experiments.MB,
				1 * experiments.GB, 4 * experiments.GB}
		}
		fmt.Println(experiments.Fig7Table(experiments.Fig7(cfg)))
	}
	if want("8") {
		ran = true
		cfg := experiments.Fig89Config{}
		repls := []int{2, 4, 6, 8}
		if *full {
			repls = []int{1, 2, 3, 4, 5, 6, 7, 8}
		} else {
			cfg.FileSize = 512 * experiments.MB
		}
		fmt.Println(experiments.Fig8Table(experiments.Fig8(cfg, repls)))
	}
	if want("9") {
		ran = true
		cfg := experiments.Fig89Config{}
		clients := 70
		repls := []int{2, 3, 4, 5, 6, 7, 8}
		if !*full {
			cfg.FileSize = 512 * experiments.MB
			clients = 40
			repls = []int{2, 4, 6, 8}
		}
		fmt.Println(experiments.Fig9Table(experiments.Fig9(cfg, clients, repls)))
	}
	if want("ablations") {
		ran = true
		fmt.Println(experiments.AblationPlacementTable(experiments.AblationPlacement()))
		fmt.Println(experiments.AblationIdleTable(experiments.AblationIdleScheduling()))
		dur := 40 * time.Minute
		if *full {
			dur = 90 * time.Minute
		}
		fmt.Println(experiments.AblationThresholdsTable(
			experiments.AblationThresholds(*seed, dur, nil)))
		fmt.Println(experiments.AblationPredictiveTable(experiments.AblationPredictive()))
		fmt.Println(experiments.AblationSpeculationTable(experiments.AblationSpeculation()))
	}
	if want("reliability") {
		ran = true
		trials := 2000
		if *full {
			trials = 20000
		}
		fmt.Println(experiments.ReliabilityTable(experiments.Reliability(trials, nil, *seed)))
	}
	if want("durability") {
		ran = true
		cfg := experiments.DurabilityConfig{Seed: *seed}
		if *full {
			cfg.Duration = 6 * time.Hour
			cfg.Crashes = 12
			cfg.Partitions = 4
			cfg.Corruptions = 20
		}
		fmt.Println(experiments.DurabilityTable(experiments.Durability(cfg)))
	}
	// The scale sweep runs only when asked for by name: its 1,000-node /
	// 1M-file point is deliberately heavy and would dominate `-fig all`.
	if strings.EqualFold(*fig, "scale") {
		ran = true
		cfg := experiments.ScaleConfig{Seed: *seed}
		if *full {
			cfg.Reads = 50000
		}
		fmt.Println(experiments.ScaleTable(experiments.ScaleDemo(cfg)))
	}
	if want("trace") {
		ran = true
		res := experiments.TraceDemo()
		t := &metrics.Table{
			Title:   "Trace demo: control-loop spans for one hot file (burst -> judge -> condor -> transfers -> drain)",
			Columns: []string{"span", "count", "total_s"},
		}
		for _, s := range res.Tracer.Summarize() {
			t.AddRowValues(s.Name, s.Count, s.Total.Seconds())
		}
		fmt.Println(t)
		fmt.Println("export the full tree with `ermsctl trace -o trace.json` and load it in https://ui.perfetto.dev")
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}
}
