package main

import (
	"context"
	"strings"
	"testing"

	"erms/internal/sweep"
)

// names extracts the task names from a selection.
func names(tasks []sweep.Task) []string {
	var out []string
	for _, t := range tasks {
		out = append(out, t.Name)
	}
	return out
}

func TestBuildTasksSelection(t *testing.T) {
	opts := figOpts{seed: 1, parallel: 1, cores: 1}

	all, notes := buildTasks("all", opts)
	got := strings.Join(names(all), " ")
	for _, want := range []string{"3", "4", "5", "6", "7", "8", "9",
		"ablation:placement", "ablation:idle", "ablation:thresholds",
		"ablation:predictive", "ablation:speculation",
		"reliability", "failover", "durability", "sweep", "scenarios", "trace"} {
		if !strings.Contains(" "+got+" ", " "+want+" ") {
			t.Errorf("-fig all missing task %q (got %s)", want, got)
		}
	}
	if strings.Contains(got, "scale") {
		t.Errorf("single-core -fig all includes scale: %s", got)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "run with -fig scale") {
		t.Errorf("-fig all notes = %v, want the scale exclusion note", notes)
	}

	// On a multi-core machine the checkpoint cache makes scale cheap
	// enough to ride along with everything else — no exclusion note.
	multi, notes := buildTasks("all", figOpts{seed: 1, parallel: 4, cores: 8})
	if !strings.Contains(strings.Join(names(multi), " "), "scale") {
		t.Errorf("multi-core -fig all missing scale: %s", strings.Join(names(multi), " "))
	}
	if len(notes) != 0 {
		t.Errorf("multi-core -fig all notes = %v, want none", notes)
	}

	one, notes := buildTasks("3a", opts)
	if len(one) != 1 || one[0].Name != "3" || len(notes) != 0 {
		t.Errorf("-fig 3a = %v notes %v, want the single fig-3 task", names(one), notes)
	}
	scale, notes := buildTasks("scale", opts)
	if len(scale) != 1 || scale[0].Name != "scale" || len(notes) != 0 {
		t.Errorf("-fig scale = %v notes %v", names(scale), notes)
	}
	if none, _ := buildTasks("nope", opts); len(none) != 0 {
		t.Errorf("-fig nope = %v, want none", names(none))
	}
}

// TestFigureTaskRuns executes one cheap figure end to end through the
// sweep engine, twice, asserting the byte-stability main relies on.
func TestFigureTaskRuns(t *testing.T) {
	var outs []string
	for range 2 {
		tasks, _ := buildTasks("7", figOpts{seed: 1, parallel: 1})
		results, err := sweep.Run(context.Background(), sweep.Options{Parallel: 2}, tasks)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, sweep.Merged(results))
	}
	if outs[0] != outs[1] {
		t.Error("figure 7 output not deterministic across runs")
	}
	if !strings.Contains(outs[0], "whole") {
		t.Errorf("figure 7 table missing expected column:\n%s", outs[0])
	}
}

func TestRuntimeTableMarkdown(t *testing.T) {
	got := runtimeTableMarkdown("7", figOpts{seed: 1, parallel: 2})
	for _, want := range []string{"| figure | serial_s | parallel_s |", "| 7 |",
		"**total wall**", "byte-identical across worker counts: true"} {
		if !strings.Contains(got, want) {
			t.Errorf("runtime table missing %q:\n%s", want, got)
		}
	}
}
