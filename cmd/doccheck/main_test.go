package main

import (
	"os"
	"path/filepath"
	"testing"
)

// write creates path (and parents) with the given contents.
func write(t *testing.T, path, contents string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunFlagsUndocumentedPackages(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "good", "doc.go"),
		"// Package good is documented.\npackage good\n")
	// Documented on one file is enough, even if others are bare.
	write(t, filepath.Join(root, "good", "extra.go"), "package good\n")
	write(t, filepath.Join(root, "bad", "bad.go"), "package bad\n")
	// Doc comments in test files don't count — godoc ignores them.
	write(t, filepath.Join(root, "bad", "bad_test.go"),
		"// Package bad pretends via its test file.\npackage bad\n")
	// Non-Go and empty directories are not packages.
	write(t, filepath.Join(root, "assets", "README.md"), "not go\n")
	// Hidden and testdata trees are skipped entirely.
	write(t, filepath.Join(root, ".hidden", "h.go"), "package h\n")
	write(t, filepath.Join(root, "good", "testdata", "td.go"), "package td\n")

	missing, err := run([]string{root})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{filepath.Join(root, "bad")}
	if len(missing) != 1 || missing[0] != want[0] {
		t.Errorf("missing = %v, want %v", missing, want)
	}
}

func TestRunCleanTree(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "a", "a.go"), "// Package a.\npackage a\n")
	write(t, filepath.Join(root, "a", "b", "b.go"), "// Package b.\npackage b\n")
	missing, err := run([]string{root})
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Errorf("clean tree flagged: %v", missing)
	}
}

func TestRunSyntaxError(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "broken.go"), "pkg broken\n")
	if _, err := run([]string{root}); err == nil {
		t.Error("unparseable file did not error")
	}
}

// TestRepoIsDocumented is the rule applied to this repository itself:
// every package under the module root must have a doc comment.
func TestRepoIsDocumented(t *testing.T) {
	missing, err := run([]string{"../.."})
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Errorf("undocumented packages in repo: %v", missing)
	}
}
