// Command doccheck enforces the repo's documentation floor: every Go
// package under the given roots must carry a package godoc comment (the
// `// Package foo ...` or `// Command foo ...` block above the package
// clause) in at least one of its non-test files. `make lint` runs it over
// the whole module, so a new package without a doc comment fails CI the
// same way an unformatted file does.
//
// Usage:
//
//	doccheck [root ...]      # default: .
//
// Exit status is non-zero if any package is undocumented; each offender
// is printed as a relative directory path.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("doccheck: ")
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	missing, err := run(roots)
	if err != nil {
		log.Fatal(err)
	}
	if len(missing) > 0 {
		for _, dir := range missing {
			fmt.Printf("%s: package has no doc comment\n", dir)
		}
		log.Fatalf("%d undocumented package(s)", len(missing))
	}
}

// run walks the roots and returns the directories whose package lacks a
// doc comment, sorted for stable output. Hidden directories and testdata
// trees are skipped; test files neither require nor provide package docs
// (godoc ignores them).
func run(roots []string) ([]string, error) {
	seen := map[string]bool{}
	var missing []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if name := d.Name(); path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return fs.SkipDir
			}
			if seen[path] {
				return nil
			}
			seen[path] = true
			documented, hasGo, err := dirHasPackageDoc(path)
			if err != nil {
				return err
			}
			if hasGo && !documented {
				missing = append(missing, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(missing)
	return missing, nil
}

// dirHasPackageDoc reports whether any non-test Go file in dir carries a
// package doc comment, and whether the directory holds Go files at all.
// Only package clauses are parsed, so a file deeper in the tree with a
// syntax error elsewhere still checks cleanly.
func dirHasPackageDoc(dir string) (documented, hasGo bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, false, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		hasGo = true
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return false, true, err
		}
		if f.Doc != nil {
			return true, true, nil
		}
	}
	return false, hasGo, nil
}
