// Command doccheck enforces the repo's documentation floor, in two tiers:
// every Go package under the given roots must carry a package godoc
// comment (the `// Package foo ...` or `// Command foo ...` block above
// the package clause) in at least one of its non-test files, and the
// directories named by -exported must additionally document every
// exported top-level identifier — types, functions, methods on exported
// receivers, and each exported const/var (a doc comment on the enclosing
// group counts for all its names). `make lint` runs it over the whole
// module with the public-surface packages held to the stricter tier, so
// an undocumented export fails CI the same way an unformatted file does.
//
// Usage:
//
//	doccheck [-exported dir,dir,...] [root ...]      # default root: .
//
// Exit status is non-zero on any violation; offenders print as relative
// paths (package misses) or file:line (export misses).
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("doccheck: ")
	exported := flag.String("exported", "", "comma-separated directories whose exported identifiers must all be documented")
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	missing, err := run(roots)
	if err != nil {
		log.Fatal(err)
	}
	for _, dir := range missing {
		fmt.Printf("%s: package has no doc comment\n", dir)
	}
	var undoc []string
	if *exported != "" {
		for _, dir := range strings.Split(*exported, ",") {
			v, err := checkExported(strings.TrimSpace(dir))
			if err != nil {
				log.Fatal(err)
			}
			undoc = append(undoc, v...)
		}
		for _, v := range undoc {
			fmt.Println(v)
		}
	}
	if n := len(missing) + len(undoc); n > 0 {
		log.Fatalf("%d documentation violation(s)", n)
	}
}

// run walks the roots and returns the directories whose package lacks a
// doc comment, sorted for stable output. Hidden directories and testdata
// trees are skipped; test files neither require nor provide package docs
// (godoc ignores them).
func run(roots []string) ([]string, error) {
	seen := map[string]bool{}
	var missing []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if name := d.Name(); path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return fs.SkipDir
			}
			if seen[path] {
				return nil
			}
			seen[path] = true
			documented, hasGo, err := dirHasPackageDoc(path)
			if err != nil {
				return err
			}
			if hasGo && !documented {
				missing = append(missing, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(missing)
	return missing, nil
}

// dirHasPackageDoc reports whether any non-test Go file in dir carries a
// package doc comment, and whether the directory holds Go files at all.
// Only package clauses are parsed, so a file deeper in the tree with a
// syntax error elsewhere still checks cleanly.
func dirHasPackageDoc(dir string) (documented, hasGo bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, false, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		hasGo = true
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return false, true, err
		}
		if f.Doc != nil {
			return true, true, nil
		}
	}
	return false, hasGo, nil
}

// checkExported parses every non-test Go file directly in dir (not
// recursively) and returns one "file:line: ..." violation per exported
// top-level identifier with no doc comment.
func checkExported(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, decl := range f.Decls {
			out = append(out, checkDecl(fset, decl)...)
		}
	}
	sort.Strings(out)
	return out, nil
}

// checkDecl returns the violations for one top-level declaration.
func checkDecl(fset *token.FileSet, decl ast.Decl) []string {
	var out []string
	complain := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s is undocumented", p.Filename, p.Line, kind, name))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return nil
		}
		if recv := receiverName(d); recv != "" {
			if !ast.IsExported(recv) {
				return nil // method on an unexported type: not public surface
			}
			complain(d.Pos(), "method", recv+"."+d.Name.Name)
		} else {
			complain(d.Pos(), "function", d.Name.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil {
					complain(sp.Pos(), "type", sp.Name.Name)
				}
			case *ast.ValueSpec:
				// A doc comment on the const/var group covers every name in
				// it — the idiom for iota blocks and related variables.
				if d.Doc != nil || sp.Doc != nil || sp.Comment != nil {
					continue
				}
				kind := "var"
				if d.Tok == token.CONST {
					kind = "const"
				}
				for _, n := range sp.Names {
					if n.IsExported() {
						complain(n.Pos(), kind, n.Name)
					}
				}
			}
		}
	}
	return out
}

// receiverName extracts the base type name of a method receiver ("" for
// plain functions).
func receiverName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}
