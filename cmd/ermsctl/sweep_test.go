package main

import (
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"erms/internal/sweep"
)

func TestParseFloats(t *testing.T) {
	got := parseFloats(" 12, 8 ,4")
	want := []float64{12, 8, 4}
	if len(got) != len(want) {
		t.Fatalf("parseFloats = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("parseFloats[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestSweepCellDeterministic(t *testing.T) {
	p := sweep.Point{Seed: 3, Values: []float64{8, 0.5}}
	a := sweepCell(p, 6*time.Minute, 4)
	b := sweepCell(p, 6*time.Minute, 4)
	if a != b {
		t.Errorf("sweepCell not deterministic:\n%s\n%s", a, b)
	}
	if !strings.HasPrefix(a, "seed=3 tau_M=8 eps=0.5") {
		t.Errorf("cell row missing label: %q", a)
	}
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestRunSweepByteStable drives the full subcommand at two worker counts:
// same grid, same bytes.
func TestRunSweepByteStable(t *testing.T) {
	var outs []string
	for _, par := range []string{"1", "4"} {
		outs = append(outs, captureStdout(t, func() {
			runSweep([]string{"-seeds", "2", "-taum", "8,4", "-duration", "6m",
				"-files", "4", "-parallel", par})
		}))
	}
	if outs[0] != outs[1] {
		t.Errorf("ermsctl sweep diverges across worker counts:\n--- parallel=1:\n%s\n--- parallel=4:\n%s",
			outs[0], outs[1])
	}
	if !strings.Contains(outs[0], "cell") || !strings.Contains(outs[0], "seed=2 tau_M=4") {
		t.Errorf("sweep output missing header or final cell:\n%s", outs[0])
	}
	if lines := strings.Count(strings.TrimSpace(outs[0]), "\n"); lines != 4 {
		t.Errorf("want header + 4 rows, got:\n%s", outs[0])
	}
}
