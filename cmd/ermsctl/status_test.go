package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"erms"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// TestStatusReportGolden pins the `ermsctl status` output byte-for-byte
// on a deterministic scenario, in both shapes: the single-namenode header
// and the federated per-shard table (where a failover makes shard 1's
// bumped epoch visible). Regenerate with `go test ./cmd/ermsctl -update`.
func TestStatusReportGolden(t *testing.T) {
	cases := []struct {
		name   string
		shards int
	}{
		{"status_single", 0},
		{"status_federated", 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys := erms.NewSystem(erms.Options{
				EnableJournal: true,
				Shards:        tc.shards,
				SafeMode:      erms.SafeModeConfig{Enabled: true},
			})
			for i := 0; i < 9; i++ {
				p := fmt.Sprintf("/golden/f%02d", i)
				if err := sys.CreateFile(p, float64(64+8*i)*erms.MB); err != nil {
					t.Fatal(err)
				}
			}
			for wave := 0; wave < 6; wave++ {
				at := time.Duration(wave) * time.Minute
				sys.Engine().Schedule(at, func() {
					for c := 0; c < 8; c++ {
						sys.Read(c, "/golden/f03", nil)
					}
				})
			}
			sys.RunFor(10 * time.Minute)
			if tc.shards > 1 {
				if err := sys.SnapshotShards(); err != nil {
					t.Fatal(err)
				}
				if err := sys.FailoverShard(1); err != nil {
					t.Fatal(err)
				}
			}
			sys.RunFor(5 * time.Minute)
			got := statusReport(sys)

			golden := filepath.Join("testdata", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if got != string(want) {
				t.Errorf("status output drifted from %s:\n--- got ---\n%s--- want ---\n%s(run with -update to regenerate)",
					golden, got, want)
			}
		})
	}
}
