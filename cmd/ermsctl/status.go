package main

import (
	"fmt"
	"strings"

	"erms"
	"erms/internal/core"
	"erms/internal/federation"
)

// statusReport renders the `ermsctl status` output. On a single-namenode
// deployment the header describes the one cluster; on a federated
// deployment the header describes shard 0 (the facade's default namenode)
// and a shards table follows with every shard's epoch, namespace size,
// safe-mode state, and repair queue depths.
func statusReport(sys *erms.System) string {
	var b strings.Builder
	c := sys.HDFS()
	m := sys.Manager()
	cm := sys.Metrics()
	mode := "OFF"
	if c.InSafeMode() {
		mode = "ON"
	}
	fmt.Fprintf(&b, "== namenode status @ %s ==\n", sys.Now())
	fmt.Fprintf(&b, "safe mode:      %s (entries %d, exits %d, rejections %d)\n",
		mode, cm.SafeModeEntries, cm.SafeModeExits, cm.SafeModeRejections)
	fmt.Fprintf(&b, "availability:   %.4f of blocks live, %.3f of nodes live\n",
		c.BlockAvailability(), c.LiveNodeFraction())
	fmt.Fprintf(&b, "writer epoch:   %d (journal epoch %d, fenced=%v; fenced writes rejected %d)\n",
		c.Epoch(), sys.Journal().Epoch(), c.Fenced(), cm.FencedWritesRejected)
	depths := m.RepairQueueDepths()
	fmt.Fprintf(&b, "repair queues: ")
	for i, n := range depths {
		fmt.Fprintf(&b, " %s=%d", repairTiers[i], n)
	}
	fmt.Fprintln(&b)
	caps := m.RepairCaps()
	fmt.Fprintf(&b, "repair pipeline: %d jobs, %d streams in flight (caps: %d cluster-wide, %d per node)\n",
		m.ActiveRepairJobs(), m.ActiveRepairStreams(), caps.MaxStreams, caps.MaxStreamsPerNode)
	st := m.Stats()
	fmt.Fprintf(&b, "counters:       repairs_deferred=%d repairs_throttled=%d\n",
		st.RepairsDeferred, st.RepairsThrottled)
	if sys.Shards() > 1 {
		fmt.Fprintf(&b, "\n== shards (router v%d, %d-way) ==\n", federation.RouterVersion, sys.Shards())
		for i := 0; i < sys.Shards(); i++ {
			sh := sys.Shard(i)
			sc := sh.HDFS()
			smode := "off"
			if sc.InSafeMode() {
				smode = "ON"
			}
			fmt.Fprintf(&b, "  shard %d: epoch %d/%d files=%-4d safe=%-3s queues", i,
				sc.Epoch(), sh.Journal().Epoch(), sc.Files(), smode)
			for t, n := range sh.Manager().RepairQueueDepths() {
				fmt.Fprintf(&b, " %s=%d", repairTiers[t], n)
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String()
}

// repairTiers names the repair pipeline's admission tiers in priority
// order; indexes match Manager.RepairQueueDepths.
var repairTiers = core.RepairTierNames()
