package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"erms"
	"erms/internal/sweep"
)

// runSweep is the `ermsctl sweep` subcommand: a seeds × thresholds grid of
// full erms.System deployments on the sweep engine. Each cell synthesizes
// its own trace, replays it as client reads, and reports what the judge
// did; rows come back in canonical grid order, byte-identical at any
// -parallel value. Timing goes to stderr so stdout stays byte-stable.
//
//	ermsctl sweep -seeds 3 -taum 12,8,4 -eps 0.5 -parallel 4
//	ermsctl sweep -seeds 5 -taum 8 -duration 2h -failfast
func runSweep(args []string) {
	fs := flag.NewFlagSet("ermsctl sweep", flag.ExitOnError)
	var (
		seeds    = fs.Int("seeds", 3, "number of workload seeds (1..N)")
		taums    = fs.String("taum", "12,8,6,4", "comma-separated τ_M values")
		epss     = fs.String("eps", "0.5", "comma-separated ε values")
		duration = fs.Duration("duration", 30*time.Minute, "trace length per cell")
		files    = fs.Int("files", 20, "file catalog size per cell")
		parallel = fs.Int("parallel", runtime.NumCPU(), "sweep workers (1 = serial; merged output is identical either way)")
		failfast = fs.Bool("failfast", false, "cancel the grid on the first cell error (default: collect all)")
		timing   = fs.Bool("timing", false, "print the per-cell timing table to stderr")
	)
	fs.Parse(args)

	var seedList []int64
	for s := int64(1); s <= int64(*seeds); s++ {
		seedList = append(seedList, s)
	}
	grid := sweep.Grid{
		Seeds: seedList,
		Axes: []sweep.Axis{
			{Name: "tau_M", Values: parseFloats(*taums)},
			{Name: "eps", Values: parseFloats(*epss)},
		},
	}
	tasks := grid.Tasks(func(ctx context.Context, p sweep.Point) (string, error) {
		return sweepCell(p, *duration, *files), nil
	})

	results, err := sweep.Run(context.Background(),
		sweep.Options{Parallel: *parallel, FailFast: *failfast}, tasks)
	fmt.Printf("%-28s %-9s %-9s %-9s %-9s %-10s %-10s %s\n",
		"cell", "decisions", "increases", "decreases", "encodes", "reads", "storageGB", "saved_nh")
	fmt.Print(sweep.Merged(results))
	if *timing {
		fmt.Fprintln(os.Stderr, sweep.TimingTable(results))
	}
	if err != nil {
		log.Fatal(err)
	}
}

// sweepCell runs one deployment: its own engine, cluster, judge, and
// workload — nothing shared with concurrent cells.
func sweepCell(p sweep.Point, duration time.Duration, files int) string {
	th := erms.DefaultThresholds()
	th.TauM = p.Values[0]
	th.Epsilon = p.Values[1]
	sys := erms.NewSystem(erms.Options{Thresholds: th})
	trace := erms.SynthesizeWorkload(erms.WorkloadConfig{
		Seed:             p.Seed,
		Duration:         duration,
		NumFiles:         files,
		MeanInterarrival: 6 * time.Second,
	})
	sys.Preload(trace)
	sys.ReplayReads(trace, nil)
	sys.RunUntil(trace.Horizon(30 * time.Minute))
	sys.Stop()

	st := sys.Manager().Stats()
	cm := sys.Metrics()
	label := fmt.Sprintf("seed=%d tau_M=%g eps=%g", p.Seed, p.Values[0], p.Values[1])
	return fmt.Sprintf("%-28s %-9d %-9d %-9d %-9d %-10d %-10.1f %.1f\n",
		label, st.Decisions, st.Increases, st.Decreases, st.Encodes,
		cm.ReadsCompleted, sys.StorageUsed()/erms.GB, sys.Energy().SavedNodeHours)
}

// parseFloats splits a comma-separated flag value into floats, dying on
// malformed input (these are static grid declarations).
func parseFloats(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			log.Fatalf("bad grid value %q: %v", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		log.Fatalf("empty grid axis %q", s)
	}
	return out
}
