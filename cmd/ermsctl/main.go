// Command ermsctl runs an ERMS deployment against a synthetic workload and
// reports what the system did: judge decisions, Condor user log, replica
// state, storage and energy accounting.
//
// Usage:
//
//	ermsctl -duration 2h -seed 3          # replay a trace, print the report
//	ermsctl -demo                         # scripted hot/cold lifecycle demo
//	ermsctl -duration 1h -log             # include the Condor user log
//	ermsctl trace -o out.json             # export a Chrome trace (Perfetto)
//	ermsctl metrics                       # Prometheus-style metrics snapshot
//	ermsctl status                        # namenode health: safe mode, epoch, repair queues
//	ermsctl status -kill 10               # same, mid-incident (mass failure trips the guard)
//	ermsctl sweep -seeds 3 -taum 12,8,4   # threshold grid across all cores
//	ermsctl checkpoint -o namenode.ckpt   # run a workload, checkpoint the namenode
//	ermsctl restore -i namenode.ckpt      # commission a fresh namenode from it
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"erms"
	"erms/internal/hdfs"
	"erms/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ermsctl: ")
	if len(os.Args) > 1 && (os.Args[1] == "trace" || os.Args[1] == "metrics") {
		runToolCommand(os.Args[1], os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "status" {
		runStatusCommand(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "sweep" {
		runSweep(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && (os.Args[1] == "checkpoint" || os.Args[1] == "restore") {
		runCheckpointCommand(os.Args[1], os.Args[2:])
		return
	}
	var (
		seed       = flag.Int64("seed", 1, "workload seed")
		duration   = flag.Duration("duration", time.Hour, "trace length")
		files      = flag.Int("files", 20, "file catalog size")
		demo       = flag.Bool("demo", false, "run the scripted hot/cooled/cold lifecycle demo instead of a trace")
		showLog    = flag.Bool("log", false, "print the Condor user log")
		tauM       = flag.Float64("taum", 8, "hot threshold τ_M")
		predictive = flag.Bool("predictive", false, "enable the trend-predicting judge")
		traceFile  = flag.String("trace", "", "replay a trace file (.json or .csv from swimgen) instead of synthesizing")
		asJSON     = flag.Bool("json", false, "emit the report as JSON instead of text")
	)
	flag.Parse()

	th := erms.DefaultThresholds()
	th.TauM = *tauM
	th.Predictive = *predictive
	sys := erms.NewSystem(erms.Options{Thresholds: th})

	if *demo {
		runDemo(sys)
	} else {
		var trace *erms.Trace
		if *traceFile != "" {
			var err error
			trace, err = loadTrace(*traceFile)
			if err != nil {
				log.Fatal(err)
			}
		} else {
			trace = erms.SynthesizeWorkload(erms.WorkloadConfig{
				Seed:             *seed,
				Duration:         *duration,
				NumFiles:         *files,
				MeanInterarrival: 6 * time.Second,
			})
		}
		sys.Preload(trace)
		sys.ReplayReads(trace, nil)
		sys.RunUntil(trace.Horizon(30 * time.Minute))
	}
	if *asJSON {
		reportJSON(sys)
	} else {
		report(sys, *showLog)
	}
}

// runToolCommand handles the observability subcommands: both replay the
// same synthetic workload, then `trace` exports the recorded span tree
// as Chrome trace_event JSON (load in Perfetto or chrome://tracing) and
// `metrics` prints the registry's Prometheus-style snapshot.
func runToolCommand(cmd string, args []string) {
	fs := flag.NewFlagSet("ermsctl "+cmd, flag.ExitOnError)
	var (
		seed     = fs.Int64("seed", 1, "workload seed")
		duration = fs.Duration("duration", 30*time.Minute, "trace length")
		files    = fs.Int("files", 20, "file catalog size")
		out      = fs.String("o", "", "output file (default stdout)")
	)
	fs.Parse(args)

	sys := erms.NewSystem(erms.Options{EnableTrace: cmd == "trace"})
	tr := erms.SynthesizeWorkload(erms.WorkloadConfig{
		Seed:             *seed,
		Duration:         *duration,
		NumFiles:         *files,
		MeanInterarrival: 6 * time.Second,
	})
	sys.Preload(tr)
	sys.ReplayReads(tr, nil)
	sys.RunUntil(tr.Horizon(30 * time.Minute))

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch cmd {
	case "trace":
		if err := sys.Tracer().WriteChromeTrace(w); err != nil {
			log.Fatal(err)
		}
		log.Printf("%d spans exported; open the file in https://ui.perfetto.dev or chrome://tracing", sys.Tracer().Len())
	case "metrics":
		if err := sys.Registry().WritePrometheus(w); err != nil {
			log.Fatal(err)
		}
	}
}

// runStatusCommand prints the namenode's degradation surface after a
// workload run: safe-mode state, the writer/journal epochs and fencing,
// per-tier repair queue depths, and the repair pipeline's occupancy
// against its caps. `-kill N` fails N datanodes shortly before the
// horizon so the report catches the cluster mid-incident (killing enough
// nodes trips the safe-mode guard). `-shards N` runs a federated
// namespace instead and appends a per-shard table (epoch, namespace
// size, safe mode, queue depths).
func runStatusCommand(args []string) {
	fs := flag.NewFlagSet("ermsctl status", flag.ExitOnError)
	var (
		seed     = fs.Int64("seed", 1, "workload seed")
		duration = fs.Duration("duration", 30*time.Minute, "trace length")
		files    = fs.Int("files", 20, "file catalog size")
		kill     = fs.Int("kill", 0, "datanodes to fail 10s before the horizon")
		shards   = fs.Int("shards", 0, "partition the namespace across N namenodes (0 = single)")
	)
	fs.Parse(args)

	sys := erms.NewSystem(erms.Options{
		EnableJournal: true,
		Shards:        *shards,
		SafeMode:      erms.SafeModeConfig{Enabled: true},
	})
	tr := erms.SynthesizeWorkload(erms.WorkloadConfig{
		Seed:             *seed,
		Duration:         *duration,
		NumFiles:         *files,
		MeanInterarrival: 6 * time.Second,
	})
	sys.Preload(tr)
	sys.ReplayReads(tr, nil)
	horizon := tr.Horizon(30 * time.Minute)
	if *kill > 0 {
		sys.Engine().At(horizon-10*time.Second, func() {
			killed := 0
			for _, d := range sys.HDFS().Datanodes() {
				if killed == *kill {
					break
				}
				if d.State == hdfs.StateActive {
					sys.KillNode(int(d.ID))
					killed++
				}
			}
		})
	}
	sys.RunUntil(horizon)
	fmt.Print(statusReport(sys))
}

// runCheckpointCommand handles the durability subcommands. `checkpoint`
// runs the synthetic workload on a journaled deployment and writes the
// namenode's versioned checkpoint file; `restore` commissions a fresh
// system from such a file and reports what came back — file count, block
// count, the virtual clock (restore fast-forwards to the capture time),
// the state digest, and a full consistency sweep.
func runCheckpointCommand(cmd string, args []string) {
	fs := flag.NewFlagSet("ermsctl "+cmd, flag.ExitOnError)
	var (
		seed     = fs.Int64("seed", 1, "workload seed (checkpoint only)")
		duration = fs.Duration("duration", 30*time.Minute, "trace length (checkpoint only)")
		files    = fs.Int("files", 20, "file catalog size (checkpoint only)")
		out      = fs.String("o", "namenode.ckpt", "checkpoint file to write")
		in       = fs.String("i", "namenode.ckpt", "checkpoint file to read")
	)
	fs.Parse(args)

	switch cmd {
	case "checkpoint":
		sys := erms.NewSystem(erms.Options{EnableJournal: true})
		tr := erms.SynthesizeWorkload(erms.WorkloadConfig{
			Seed:             *seed,
			Duration:         *duration,
			NumFiles:         *files,
			MeanInterarrival: 6 * time.Second,
		})
		sys.Preload(tr)
		sys.ReplayReads(tr, nil)
		sys.RunUntil(tr.Horizon(30 * time.Minute))
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Checkpoint(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		c := sys.HDFS()
		log.Printf("wrote %s: %d files, %d blocks, digest %#x, journal at seq %d",
			*out, c.Files(), c.LiveBlocks(), sys.StateDigest(), sys.Journal().NextSeq())
	case "restore":
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		sys := erms.NewSystem(erms.Options{EnableJournal: true})
		if err := sys.Restore(f); err != nil {
			log.Fatal(err)
		}
		c := sys.HDFS()
		consistent := c.ConsistencyErrors() == nil
		log.Printf("restored %s: %d files, %d blocks, virtual time %s, digest %#x, consistent=%v",
			*in, c.Files(), c.LiveBlocks(), sys.Engine().Now(), sys.StateDigest(), consistent)
		if !consistent {
			for _, e := range c.ConsistencyErrors() {
				log.Printf("  inconsistency: %v", e)
			}
			os.Exit(1)
		}
	}
}

// jsonReport is the machine-readable run summary.
type jsonReport struct {
	Decisions []string          `json:"decisions"`
	Stats     any               `json:"stats"`
	Metrics   erms.HDFSMetrics  `json:"metrics"`
	StorageGB float64           `json:"storageGB"`
	Energy    erms.EnergyReport `json:"energy"`
	Datanodes []jsonDatanode    `json:"datanodes"`
	CondorLog []string          `json:"condorLog"`
}

type jsonDatanode struct {
	Name   string  `json:"name"`
	State  string  `json:"state"`
	Blocks int     `json:"blocks"`
	UsedGB float64 `json:"usedGB"`
	Pool   bool    `json:"standbyPool"`
}

func reportJSON(sys *erms.System) {
	m := sys.Manager()
	rep := jsonReport{
		Stats:     m.Stats(),
		Metrics:   sys.Metrics(),
		StorageGB: sys.StorageUsed() / erms.GB,
		Energy:    sys.Energy(),
	}
	for _, d := range sys.Decisions() {
		rep.Decisions = append(rep.Decisions, d.String())
	}
	for _, d := range sys.HDFS().Datanodes() {
		rep.Datanodes = append(rep.Datanodes, jsonDatanode{
			Name:   d.Name,
			State:  d.State.String(),
			Blocks: d.NumBlocks(),
			UsedGB: d.Used / erms.GB,
			Pool:   m.InStandbyPool(d.ID),
		})
	}
	for _, ev := range m.Scheduler().Log() {
		rep.CondorLog = append(rep.CondorLog, ev.String())
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
}

func loadTrace(path string) (*erms.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return workload.ReadCSV(f)
	}
	return workload.ReadJSON(f)
}

func runDemo(sys *erms.System) {
	fmt.Println("== demo: one file through the hot → cooled → cold lifecycle ==")
	must(sys.CreateFile("/demo/dataset", 640*erms.MB))
	// Phase 1: sustained hammering so the judge marks the file hot and the
	// extra replicas are observable while the load is still on.
	for wave := 0; wave < 10; wave++ {
		sys.Engine().Schedule(time.Duration(wave)*time.Minute, func() {
			for i := 0; i < 12; i++ {
				sys.Read(i%10, "/demo/dataset", nil)
			}
		})
	}
	sys.RunFor(8 * time.Minute)
	fmt.Printf("during hot phase:   replication = %d\n", sys.Replication("/demo/dataset"))
	sys.RunFor(4 * time.Minute)
	// Phase 2: silence; the judge cools it back to the default factor.
	sys.RunFor(30 * time.Minute)
	fmt.Printf("after cool-down:    replication = %d\n", sys.Replication("/demo/dataset"))
	// Phase 3: long silence; the file goes cold and is erasure-coded.
	sys.RunFor(3 * time.Hour)
	f := sys.HDFS().File("/demo/dataset")
	fmt.Printf("after cold phase:   encoded = %v, parity blocks = %d\n", f.Encoded, len(f.Parity))
	// Phase 4: access it again; ERMS decodes immediately.
	sys.Read(3, "/demo/dataset", nil)
	sys.RunFor(20 * time.Minute)
	f = sys.HDFS().File("/demo/dataset")
	fmt.Printf("after re-access:    encoded = %v, replication = %d\n\n", f.Encoded, sys.Replication("/demo/dataset"))
}

func report(sys *erms.System, showLog bool) {
	fmt.Println("== decisions ==")
	for _, d := range sys.Decisions() {
		fmt.Println("  " + d.String())
	}
	m := sys.Manager()
	st := m.Stats()
	fmt.Printf("\n== summary ==\n")
	fmt.Printf("decisions: %d (increase %d, decrease %d, encode %d, decode %d)\n",
		st.Decisions, st.Increases, st.Decreases, st.Encodes, st.Decodes)
	fmt.Printf("standby commissions: %d, shutdowns: %d\n", st.Commissions, st.Shutdowns)
	cm := sys.Metrics()
	fmt.Printf("reads: %d completed, %.1f GB read, locality %d/%d/%d (node/rack/remote)\n",
		cm.ReadsCompleted, cm.BytesRead/erms.GB, cm.NodeLocalReads, cm.RackLocalReads, cm.RemoteReads)
	fmt.Printf("replication traffic: %.0f MB across %d replica adds\n", cm.ReplicationMB, cm.ReplicasAdded)
	fmt.Printf("robustness: %d repairs (%d attempts retried), time-to-repair p50/p99 %.1fs/%.1fs\n",
		st.Repairs, st.RepairsRetried, st.TimeToRepairP50, st.TimeToRepairP99)
	fmt.Printf("corruption: %d replicas found corrupt, %d blocks restored; stale nodes now: %d\n",
		st.CorruptFound, st.CorruptFixed, st.StaleNodes)
	fmt.Printf("storage used: %.1f GB across %d datanodes\n",
		sys.StorageUsed()/erms.GB, sys.HDFS().NumDatanodes())
	en := sys.Energy()
	fmt.Printf("energy: %d pool nodes, %.1f node-hours saved vs always-on\n",
		en.PoolNodes, en.SavedNodeHours)

	fmt.Println("\n== datanodes ==")
	for _, d := range sys.HDFS().Datanodes() {
		pool := ""
		if m.InStandbyPool(d.ID) {
			pool = " [pool]"
		}
		fmt.Printf("  %-8s %-8s blocks=%-4d used=%6.1f GB%s\n",
			d.Name, d.State, d.NumBlocks(), d.Used/erms.GB, pool)
	}
	if showLog {
		fmt.Println("\n== condor user log ==")
		for _, ev := range m.Scheduler().Log() {
			fmt.Println("  " + ev.String())
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
