package erms

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"

	"erms/internal/auditlog"
	"erms/internal/federation"
)

// Journal and JournalEntry surface the write-ahead journal types (see
// Options.EnableJournal).
type (
	// Journal is the namenode's write-ahead journal of durable mutations.
	Journal = auditlog.Journal
	// JournalEntry is one typed journal record.
	JournalEntry = auditlog.Entry
)

// Checkpoint serializes the namenode's durable state — namespace, block
// map, replica lists, datanode lifecycle state, metrics — to w in the
// versioned, deterministic checkpoint format. Derived indexes are not
// serialized; Restore rebuilds them. The system keeps running; the
// checkpoint captures the state as of Now().
//
// A federated system with one shard writes the classic single-namenode
// format, byte for byte — the shards=1 contract. With two or more shards
// it writes the federated envelope: magic, envelope version, the router
// (version + shard count), each shard's classic checkpoint blob
// length-prefixed in shard order, and an FNV-1a trailer over everything
// before it.
func (s *System) Checkpoint(w io.Writer) error {
	if s.shards == nil {
		return s.cluster.WriteCheckpoint(w)
	}
	if len(s.shards) == 1 {
		return s.shards[0].cluster.WriteCheckpoint(w)
	}
	return s.writeFederatedCheckpoint(w)
}

// The federated checkpoint envelope. EnvelopeVersion changes whenever the
// envelope's own layout does; each shard blob inside carries the classic
// checkpoint format's separate version.
const (
	fedCkptMagic       = "ERMSFEDC"
	FedEnvelopeVersion = 1
)

func (s *System) writeFederatedCheckpoint(w io.Writer) error {
	var body bytes.Buffer
	body.WriteString(fedCkptMagic)
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		body.Write(scratch[:n])
	}
	putUvarint(FedEnvelopeVersion)
	body.Write(s.router.Encode())
	for i, sh := range s.shards {
		var blob bytes.Buffer
		if err := sh.cluster.WriteCheckpoint(&blob); err != nil {
			return fmt.Errorf("erms: shard %d checkpoint: %w", i, err)
		}
		putUvarint(uint64(blob.Len()))
		body.Write(blob.Bytes())
	}
	h := fnv.New64a()
	h.Write(body.Bytes())
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], h.Sum64())
	if _, err := w.Write(body.Bytes()); err != nil {
		return fmt.Errorf("erms: federated checkpoint: %w", err)
	}
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("erms: federated checkpoint: %w", err)
	}
	return nil
}

// restoreFederated rebuilds every shard from a federated envelope. The
// system must be freshly built with the same Options (same shard count);
// the whole stream is read and checksummed before any shard is touched,
// and each blob then passes the classic per-shard restore validation.
func (s *System) restoreFederated(data []byte) error {
	if len(data) < len(fedCkptMagic)+8 {
		return fmt.Errorf("erms: federated checkpoint too short (%d bytes)", len(data))
	}
	payload, trailer := data[:len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	h.Write(payload)
	if got, want := binary.LittleEndian.Uint64(trailer), h.Sum64(); got != want {
		return fmt.Errorf("erms: federated checkpoint checksum mismatch (%#x != %#x)", got, want)
	}
	br := bytes.NewReader(payload[len(fedCkptMagic):])
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("erms: federated checkpoint version: %w", err)
	}
	if version != FedEnvelopeVersion {
		return fmt.Errorf("erms: unsupported federated envelope version %d (want %d)",
			version, FedEnvelopeVersion)
	}
	rest := payload[len(payload)-br.Len():]
	router, used, err := federation.Decode(rest)
	if err != nil {
		return fmt.Errorf("erms: federated checkpoint router: %w", err)
	}
	if router.Shards() != len(s.shards) {
		return fmt.Errorf("erms: checkpoint has %d shards, system has %d",
			router.Shards(), len(s.shards))
	}
	br = bytes.NewReader(rest[used:])
	for i, sh := range s.shards {
		blobLen, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("erms: shard %d blob length: %w", i, err)
		}
		if blobLen > uint64(br.Len()) {
			return fmt.Errorf("erms: shard %d blob length %d exceeds remaining %d bytes",
				i, blobLen, br.Len())
		}
		blob := make([]byte, blobLen)
		if _, err := io.ReadFull(br, blob); err != nil {
			return fmt.Errorf("erms: shard %d blob: %w", i, err)
		}
		if err := sh.cluster.RestoreCheckpoint(bytes.NewReader(blob)); err != nil {
			return fmt.Errorf("erms: shard %d restore: %w", i, err)
		}
		if sh.cluster.Journal() != nil {
			sh.cluster.SetJournal(auditlog.NewJournalAt(sh.cluster.RestoredJournalSeq()))
		}
	}
	if br.Len() != 0 {
		return fmt.Errorf("erms: federated checkpoint: %d trailing bytes", br.Len())
	}
	return nil
}

// Restore rebuilds the namenode's state from a checkpoint stream. The
// system must be freshly built with the same Options (no files created,
// no time advanced past the checkpoint's capture time); restore is
// all-or-nothing and advances the clock to the capture time. Note the
// ERMS judge starts cold after a restore — heat windows re-warm from live
// traffic, exactly as they would after a real namenode failover.
//
// If the system carries a journal (Options.EnableJournal), it is realigned
// to continue the restored sequence numbering, so a checkpoint of the
// restored system re-encodes byte-identically to one from the original.
func (s *System) Restore(r io.Reader) error {
	if s.shards != nil && len(s.shards) > 1 {
		data, err := io.ReadAll(r)
		if err != nil {
			return fmt.Errorf("erms: federated checkpoint read: %w", err)
		}
		return s.restoreFederated(data)
	}
	c := s.HDFS()
	if err := c.RestoreCheckpoint(r); err != nil {
		return err
	}
	if c.Journal() != nil {
		c.SetJournal(auditlog.NewJournalAt(c.RestoredJournalSeq()))
	}
	return nil
}

// StateDigest fingerprints the durable namenode state (see
// hdfs.Cluster.StateDigest): two systems with equal digests agree on the
// namespace, block map, replica lists, and node lifecycle states. A
// one-shard federation digests identically to the classic system; with
// more shards the per-shard digests are mixed with the shard index so
// re-homing a file between shards changes the digest.
func (s *System) StateDigest() uint64 {
	if s.shards == nil {
		return s.cluster.StateDigest()
	}
	if len(s.shards) == 1 {
		return s.shards[0].cluster.StateDigest()
	}
	h := fnv.New64a()
	var buf [8]byte
	mix := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	mix(federation.RouterVersion)
	mix(uint64(len(s.shards)))
	for i, sh := range s.shards {
		mix(uint64(i))
		mix(sh.cluster.StateDigest())
	}
	return h.Sum64()
}

// Journal returns the write-ahead journal, or nil unless EnableJournal
// was set (or the system was built by NewStandby). On a federated facade
// this is shard 0's journal; each shard journals independently
// (Shard(i).Journal()).
func (s *System) Journal() *Journal { return s.HDFS().Journal() }

// NewStandby commissions a standby namenode: a fresh system built from
// opts that restores the checkpoint and replays the journal tail, ending
// with durable state identical (same StateDigest) to the namenode that
// wrote them. opts must match the failed system's Options — the
// checkpoint's config digest enforces the parts that matter. The standby
// gets its own journal continuing the failed namenode's sequence
// numbering, so it can itself be checkpointed and failed over.
//
// Transient work (in-flight reads, replica copies, MapReduce tasks) is
// not restored — clients retry, exactly as in a real failover — and the
// ERMS judge starts cold, re-warming its heat windows from live traffic.
func NewStandby(opts Options, checkpoint io.Reader, tail []JournalEntry) (*System, error) {
	if opts.Shards > 1 {
		return nil, fmt.Errorf("erms: NewStandby commissions one namenode; federated shards fail over via FailoverShard")
	}
	opts.Shards = 0
	s := newBase(opts)
	if err := s.cluster.RestoreCheckpoint(checkpoint); err != nil {
		return nil, fmt.Errorf("standby restore: %w", err)
	}
	if err := s.cluster.ReplayJournal(tail); err != nil {
		return nil, fmt.Errorf("standby replay: %w", err)
	}
	s.cluster.SetJournal(auditlog.NewJournalAt(s.cluster.RestoredJournalSeq()))
	// Promotion bumps the writer epoch past the one that produced the tail:
	// entries the fenced predecessor might still try to write carry the old
	// epoch and are recognizably stale.
	prevEpoch := uint64(1)
	if n := len(tail); n > 0 && tail[n-1].Epoch > 0 {
		prevEpoch = tail[n-1].Epoch
	}
	s.cluster.Journal().SetEpoch(prevEpoch + 1)
	s.cluster.AdoptEpoch()
	s.attachManager(opts)
	return s, nil
}
