package erms

import (
	"fmt"
	"io"

	"erms/internal/auditlog"
)

// Journal and JournalEntry surface the write-ahead journal types (see
// Options.EnableJournal).
type (
	// Journal is the namenode's write-ahead journal of durable mutations.
	Journal = auditlog.Journal
	// JournalEntry is one typed journal record.
	JournalEntry = auditlog.Entry
)

// Checkpoint serializes the namenode's durable state — namespace, block
// map, replica lists, datanode lifecycle state, metrics — to w in the
// versioned, deterministic checkpoint format. Derived indexes are not
// serialized; Restore rebuilds them. The system keeps running; the
// checkpoint captures the state as of Now().
func (s *System) Checkpoint(w io.Writer) error { return s.cluster.WriteCheckpoint(w) }

// Restore rebuilds the namenode's state from a checkpoint stream. The
// system must be freshly built with the same Options (no files created,
// no time advanced past the checkpoint's capture time); restore is
// all-or-nothing and advances the clock to the capture time. Note the
// ERMS judge starts cold after a restore — heat windows re-warm from live
// traffic, exactly as they would after a real namenode failover.
//
// If the system carries a journal (Options.EnableJournal), it is realigned
// to continue the restored sequence numbering, so a checkpoint of the
// restored system re-encodes byte-identically to one from the original.
func (s *System) Restore(r io.Reader) error {
	if err := s.cluster.RestoreCheckpoint(r); err != nil {
		return err
	}
	if s.cluster.Journal() != nil {
		s.cluster.SetJournal(auditlog.NewJournalAt(s.cluster.RestoredJournalSeq()))
	}
	return nil
}

// StateDigest fingerprints the durable namenode state (see
// hdfs.Cluster.StateDigest): two systems with equal digests agree on the
// namespace, block map, replica lists, and node lifecycle states.
func (s *System) StateDigest() uint64 { return s.cluster.StateDigest() }

// Journal returns the write-ahead journal, or nil unless EnableJournal
// was set (or the system was built by NewStandby).
func (s *System) Journal() *Journal { return s.cluster.Journal() }

// NewStandby commissions a standby namenode: a fresh system built from
// opts that restores the checkpoint and replays the journal tail, ending
// with durable state identical (same StateDigest) to the namenode that
// wrote them. opts must match the failed system's Options — the
// checkpoint's config digest enforces the parts that matter. The standby
// gets its own journal continuing the failed namenode's sequence
// numbering, so it can itself be checkpointed and failed over.
//
// Transient work (in-flight reads, replica copies, MapReduce tasks) is
// not restored — clients retry, exactly as in a real failover — and the
// ERMS judge starts cold, re-warming its heat windows from live traffic.
func NewStandby(opts Options, checkpoint io.Reader, tail []JournalEntry) (*System, error) {
	s := newBase(opts)
	if err := s.cluster.RestoreCheckpoint(checkpoint); err != nil {
		return nil, fmt.Errorf("standby restore: %w", err)
	}
	if err := s.cluster.ReplayJournal(tail); err != nil {
		return nil, fmt.Errorf("standby replay: %w", err)
	}
	s.cluster.SetJournal(auditlog.NewJournalAt(s.cluster.RestoredJournalSeq()))
	// Promotion bumps the writer epoch past the one that produced the tail:
	// entries the fenced predecessor might still try to write carry the old
	// epoch and are recognizably stale.
	prevEpoch := uint64(1)
	if n := len(tail); n > 0 && tail[n-1].Epoch > 0 {
		prevEpoch = tail[n-1].Epoch
	}
	s.cluster.Journal().SetEpoch(prevEpoch + 1)
	s.cluster.AdoptEpoch()
	s.attachManager(opts)
	return s, nil
}
