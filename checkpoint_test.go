package erms_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"erms"
)

// driveSystem runs a journaled system through enough churn that the judge
// makes decisions and replicas move.
func driveSystem(t *testing.T) *erms.System {
	t.Helper()
	sys := erms.NewSystem(erms.Options{EnableJournal: true})
	if sys.Journal() == nil {
		t.Fatal("EnableJournal did not attach a journal")
	}
	for i, path := range []string{"/data/a", "/data/b", "/data/c"} {
		if err := sys.CreateFileOn(path, 256*erms.MB, 3, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		sys.Read(i%10, "/data/a", nil)
	}
	sys.RunFor(10 * time.Minute)
	return sys
}

func TestSystemCheckpointFailover(t *testing.T) {
	sys := driveSystem(t)

	// Mid-run snapshot: checkpoint + journal position.
	var ckpt bytes.Buffer
	if err := sys.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	seq := sys.Journal().NextSeq()

	// The primary keeps working after the snapshot.
	if err := sys.Delete("/data/b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		sys.Read(i%10, "/data/c", nil)
	}
	sys.RunFor(10 * time.Minute)

	// It crashes; the standby restores the checkpoint and replays the tail.
	tail := sys.Journal().Tail(seq)
	if tail == nil {
		t.Fatal("journal tail unavailable")
	}
	standby, err := erms.NewStandby(erms.Options{EnableJournal: true},
		bytes.NewReader(ckpt.Bytes()), tail)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := standby.StateDigest(), sys.StateDigest(); got != want {
		t.Fatalf("standby digest %#x != primary %#x (tail: %d entries)", got, want, len(tail))
	}
	if errs := standby.HDFS().ConsistencyErrors(); errs != nil {
		t.Fatalf("standby inconsistent: %v", errs)
	}
	if standby.Manager() == nil {
		t.Fatal("standby has no ERMS manager")
	}
	if standby.Journal() == nil || standby.Journal().NextSeq() != sys.Journal().NextSeq() {
		t.Fatal("standby journal does not continue the primary's sequence")
	}
	if standby.Replication("/data/a") != sys.Replication("/data/a") {
		t.Fatalf("replication of /data/a: standby %d, primary %d",
			standby.Replication("/data/a"), sys.Replication("/data/a"))
	}

	// The promoted standby serves: reads work and the judge re-warms.
	standby.Read(1, "/data/a", nil)
	standby.RunFor(5 * time.Minute)
	if errs := standby.HDFS().ConsistencyErrors(); errs != nil {
		t.Fatalf("standby broke after promotion: %v", errs)
	}
}

func TestSystemRestoreErrors(t *testing.T) {
	sys := driveSystem(t)
	var ckpt bytes.Buffer
	if err := sys.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}

	// Mismatched options fail the config digest.
	if _, err := erms.NewStandby(erms.Options{Nodes: 24},
		bytes.NewReader(ckpt.Bytes()), nil); err == nil ||
		!strings.Contains(err.Error(), "config digest") {
		t.Fatalf("standby with wrong options: %v", err)
	}

	// A corrupted checkpoint is rejected outright.
	bad := append([]byte(nil), ckpt.Bytes()...)
	bad[len(bad)/2] ^= 0x01
	if _, err := erms.NewStandby(erms.Options{}, bytes.NewReader(bad), nil); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}

	// Restore into a used system is refused.
	if err := sys.Restore(bytes.NewReader(ckpt.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "pristine") {
		t.Fatalf("restore into used system: %v", err)
	}

	// A tail from the wrong position is refused.
	if _, err := erms.NewStandby(erms.Options{}, bytes.NewReader(ckpt.Bytes()),
		[]erms.JournalEntry{{Seq: 1}}); err == nil ||
		!strings.Contains(err.Error(), "checkpoint expects") {
		t.Fatalf("standby with misaligned tail: %v", err)
	}
}
