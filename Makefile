# ERMS reproduction — common workflows.

GO ?= go

.PHONY: all build vet test race check bench figures fuzz full-scale soak examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full gate: what CI runs and what a PR must keep green.
check: build vet test race soak

# Chaos soak: six virtual hours of crashes, partitions, and silent
# corruption under heartbeat detection, across a 3-seed matrix, with the
# race detector on. ERMS_SOAK=1 widens the seed matrix.
soak:
	ERMS_SOAK=1 $(GO) test -race -run 'TestChaosSoak|TestChaosDeterminism' ./internal/core/

# Records the CEP and judge perf baselines (BENCH_cep.json tracks the
# trajectory across PRs) and prints every other package's benchmarks.
bench:
	$(GO) test -json -bench=. -benchmem -run '^$$' ./internal/cep/ ./internal/core/ > BENCH_cep.json
	$(GO) test -bench=. -benchmem -run '^$$' ./internal/sim/ ./internal/hdfs/ ./internal/netsim/ \
		./internal/classad/ ./internal/condor/ ./internal/mapred/ ./internal/workload/
	$(GO) run ./cmd/figures -fig durability

# Prints every figure/ablation table at quick scale (use FIG=8 for one).
FIG ?= all
figures:
	$(GO) run ./cmd/figures -fig $(FIG)

# Paper-scale shape validation (minutes).
full-scale:
	ERMS_FULL=1 $(GO) test -run TestPaperScale -v ./internal/experiments/

# Short fuzzing passes over the three parsers.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/auditlog/
	$(GO) test -fuzz=FuzzParseQuery -fuzztime=30s ./internal/cep/
	$(GO) test -fuzz=FuzzParseExpr -fuzztime=30s ./internal/classad/
	$(GO) test -fuzz=FuzzParseAd -fuzztime=30s ./internal/classad/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hotdata
	$(GO) run ./examples/coldarchive
	$(GO) run ./examples/standby
	$(GO) run ./examples/auditreplay

clean:
	$(GO) clean -testcache
