# ERMS reproduction — common workflows.

GO ?= go

.PHONY: all build vet test bench figures fuzz full-scale examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Regenerates every figure's headline numbers as benchmark metrics.
bench:
	$(GO) test -bench=. -benchmem ./...

# Prints every figure/ablation table at quick scale (use FIG=8 for one).
FIG ?= all
figures:
	$(GO) run ./cmd/figures -fig $(FIG)

# Paper-scale shape validation (minutes).
full-scale:
	ERMS_FULL=1 $(GO) test -run TestPaperScale -v ./internal/experiments/

# Short fuzzing passes over the three parsers.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/auditlog/
	$(GO) test -fuzz=FuzzParseQuery -fuzztime=30s ./internal/cep/
	$(GO) test -fuzz=FuzzParseExpr -fuzztime=30s ./internal/classad/
	$(GO) test -fuzz=FuzzParseAd -fuzztime=30s ./internal/classad/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hotdata
	$(GO) run ./examples/coldarchive
	$(GO) run ./examples/standby
	$(GO) run ./examples/auditreplay

clean:
	$(GO) clean -testcache
