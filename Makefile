# ERMS reproduction — common workflows.

GO ?= go

.PHONY: all build vet test race check bench bench-accept benchdiff lint cover cover-check \
	figures fuzz failover federate full-scale soak sweep degrade scenarios serve runtime-table examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full gate: what CI runs and what a PR must keep green.
check: build vet test race soak sweep degrade scenarios federate serve

# Cross-core determinism gate: the same threshold grid — and the scenario
# grid — at -parallel 1 and -parallel 8 must merge to byte-identical
# output, proven under the race detector (see internal/sweep and DESIGN.md).
sweep:
	$(GO) test -race -run 'TestThresholdSweepWorkerInvariance|TestWorkerCountInvariance|TestScenarioWorkerInvariance' \
		./internal/experiments/ ./internal/sweep/

# Scenario gate: the production-shaped workload suite (multi-tenant,
# diurnal, flash crowd, partial reads), the hdfs ranged-read path, the
# judge's block-level boundary tests, and the tenant-isolation/reaction
# oracles — all under the race detector (see DESIGN.md §14).
scenarios:
	$(GO) test -race -run 'TestScenario|TestReadRange|TestJudgeRanged|TestShrink|TestJainFairness' \
		./internal/workload/ ./internal/experiments/ ./internal/hdfs/ ./internal/core/ ./internal/invariant/

# Degradation gate: the degrade study (rack outage vs repair throttling,
# EXPERIMENTS.md) must be deterministic and keep its shape — throttled
# repair beats unthrottled on foreground reads, safe mode defers the
# storm, nothing loses data — plus the 25-seed correlated-failure storm
# suite with its safe-mode / repair-cap / epoch-fencing oracles. All
# under the race detector.
degrade:
	$(GO) test -race -run 'TestDegradeDeterminism|TestDegradeShape' ./internal/experiments/
	$(GO) test -race -run 'TestDegradedStormSuite' ./internal/invariant/

# Regenerates the per-figure serial-vs-parallel runtime table embedded in
# EXPERIMENTS.md (append-only artifact; CI uploads it from the cover job).
runtime-table:
	$(GO) run ./cmd/figures -fig all -runtime-table > runtime_table.md
	@cat runtime_table.md

# Failover gate: namenode crashes mid-storm (checkpoint + journal-tail
# standby rebuild), the 10-seed checkpoint-resume equivalence property,
# and the root-package promotion path — all under the race detector.
failover:
	$(GO) test -race -run 'TestFailoverMidStorm|TestFailoverDemo|TestCheckpointResumeEquivalence|TestSystemCheckpointFailover' \
		./internal/chaos/ ./internal/experiments/ ./internal/hdfs/ ./.

# Federation gate: shards=1 must stay byte-identical to the single
# namenode (state digest, checkpoint bytes, metrics, journal), the
# 2/4-shard grid must be worker-count invariant, the two-phase
# cross-shard rename must survive a crash between any two protocol
# steps, and the 25-seed rename storm must hold the ownership oracle —
# no file in two shards or zero shards, ever. All under the race
# detector (see DESIGN.md §15).
federate:
	$(GO) test -race -run 'TestShardOneEquivalence|TestFederatedRoutingAndAggregation|TestCrossShardMoveRun|TestMoveCrashRecoveryAtEveryStep|TestResolveMovesBranches|TestFederatedCheckpointRoundTrip|TestFederatedSweepDeterminism' ./.
	$(GO) test -race -run 'TestCrossShardRenameStorm|TestCheckFederationOracle' ./internal/invariant/
	$(GO) test -race ./internal/federation/

# Service-mode gate: the Clock-seam equivalence proof (sim vs seam vs
# service mode, byte-identical), the HTTP control plane's handler suite,
# and the real-clock ermsd smoke test (build the daemon, boot it, post
# ops, scrape /metrics) — all under the race detector. See OPERATIONS.md.
serve:
	$(GO) build ./cmd/ermsd
	$(GO) test -race -run 'TestClockSeamEquivalence' ./.
	$(GO) test -race ./internal/server/ ./cmd/ermsd/

# Chaos soak: six virtual hours of crashes, partitions, and silent
# corruption under heartbeat detection, across a 3-seed matrix, with the
# race detector on. ERMS_SOAK=1 widens the seed matrix.
soak:
	ERMS_SOAK=1 $(GO) test -race -run 'TestChaosSoak|TestChaosDeterminism' ./internal/core/

# Measures the CEP and judge perf baselines into BENCH_cep.new.json (so a
# run never clobbers the committed BENCH_cep.json trajectory) and prints
# every other package's benchmarks. Promote with `make bench-accept`.
bench:
	$(GO) test -json -bench=. -benchmem -run '^$$' ./internal/cep/ ./internal/core/ ./internal/experiments/ > BENCH_cep.new.json
	$(GO) test -bench=. -benchmem -run '^$$' ./internal/sim/ ./internal/hdfs/ ./internal/netsim/ \
		./internal/classad/ ./internal/condor/ ./internal/mapred/ ./internal/workload/
	$(GO) run ./cmd/figures -fig durability

# Promotes the last `make bench` run to be the committed baseline.
bench-accept:
	mv BENCH_cep.new.json BENCH_cep.json

# Runs the benchmarks fresh and gates against the committed baseline:
# >20% ns/op regression or any allocs/op increase on the judge hot path
# fails (see cmd/benchdiff).
benchdiff:
	$(GO) test -json -bench=. -benchmem -run '^$$' ./internal/cep/ ./internal/core/ ./internal/experiments/ > BENCH_cep.new.json
	$(GO) run ./cmd/benchdiff

# Style gate: vet, gofmt (fails listing any unformatted file), and the
# documentation floor (every package needs a godoc comment; the public
# surface — the erms facade, the HTTP control plane, the workload codec,
# the judge core, and the experiments — must document every exported
# identifier; see cmd/doccheck).
lint: vet
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) run ./cmd/doccheck -exported .,internal/server,internal/workload,internal/core,internal/experiments .

# Coverage floor: CI fails if total statement coverage drops below this.
COVER_FLOOR ?= 80.0

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

cover-check: cover
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	awk -v t=$$total -v f=$(COVER_FLOOR) 'BEGIN { \
		if (t + 0 < f + 0) { printf "coverage %.1f%% is below the %.1f%% floor\n", t, f; exit 1 } \
		printf "coverage %.1f%% >= floor %.1f%%\n", t, f }'

# Prints every figure/ablation table at quick scale (use FIG=8 for one).
FIG ?= all
figures:
	$(GO) run ./cmd/figures -fig $(FIG)

# Paper-scale shape validation (minutes).
full-scale:
	ERMS_FULL=1 $(GO) test -run TestPaperScale -v ./internal/experiments/

# Short fuzzing passes over the parsers, the trace decoder, and the
# checkpoint decoder (corrupt bytes must error, never panic or
# half-restore).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/auditlog/
	$(GO) test -fuzz=FuzzParseQuery -fuzztime=30s ./internal/cep/
	$(GO) test -fuzz=FuzzParseExpr -fuzztime=30s ./internal/classad/
	$(GO) test -fuzz=FuzzParseAd -fuzztime=30s ./internal/classad/
	$(GO) test -fuzz=FuzzDecodeTrace -fuzztime=30s ./internal/workload/
	$(GO) test -fuzz=FuzzDecodeCheckpoint -fuzztime=30s ./internal/hdfs/
	$(GO) test -fuzz=FuzzShardRouter -fuzztime=30s ./internal/federation/
	$(GO) test -fuzz=FuzzDecodeFederatedCheckpoint -fuzztime=30s ./.

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hotdata
	$(GO) run ./examples/coldarchive
	$(GO) run ./examples/standby
	$(GO) run ./examples/auditreplay

clean:
	$(GO) clean -testcache
